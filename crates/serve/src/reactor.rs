//! The readiness-driven I/O core: one thread, every connection.
//!
//! One reactor thread owns the listener and all connection sockets,
//! multiplexed through [`crate::poller`] (epoll on Linux). Each
//! connection is a small state machine — reading → parsing → executing →
//! writing — fed by the resumable [`RequestParser`], with pipelined
//! HTTP/1.1 requests answered strictly in arrival order through a
//! per-connection completion ledger.
//!
//! The reactor itself never searches. Cache hits, parse errors, and
//! cheap control endpoints (`/health`, `/stats`, `/shutdown`, 404/405)
//! answer inline — a cache probe and a JSON render, microseconds — while
//! anything that must sketch, search, or mutate the engine is handed to
//! the compute pool. Cache-missed `/query`/`/topk` requests decoded in
//! the *same poller tick* are batched into ONE pool job that executes
//! them through a single `search_batch` dispatch, so a burst of N
//! concurrent single-query clients costs one fan-out, not N.
//!
//! Backpressure and hygiene: per-connection pipelines are capped at
//! [`MAX_PIPELINE`] in-flight requests (read interest drops while full),
//! reads are bounded per tick so one firehose client cannot starve the
//! loop, write buffers are reused and shrunk after bursts, a
//! whole-request deadline kills byte-dripping clients, and idle
//! keep-alive connections expire after [`IDLE_TIMEOUT`].

use crate::http::{HttpError, Request, RequestParser};
use crate::poller::{Event, Poller, Waker, READ, WRITE};
use crate::pool::ThreadPool;
use crate::server::{self, MissQuery, Outcome, QueryStep, Shared};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// In-flight (unanswered) pipelined requests allowed per connection;
/// beyond it the reactor stops reading from that socket until responses
/// drain (TCP backpressure does the rest).
const MAX_PIPELINE: usize = 64;
/// `/query`/`/topk` bodies up to this size parse inline on the reactor;
/// larger ones go to the compute pool like any heavy request.
const INLINE_BODY_MAX: usize = 64 * 1024;
/// Per-`read` chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Per-connection read budget within one tick — fairness bound so one
/// firehose client cannot monopolise the loop.
const PER_TICK_READ_MAX: usize = 256 * 1024;
/// Poller timeout while serving: the upper bound on deadline-sweep lag.
const TICK: Duration = Duration::from_millis(250);
/// Poller timeout while draining for shutdown.
const DRAIN_TICK: Duration = Duration::from_millis(50);
/// Deadline-sweep cadence (sweeps are O(connections), so they are rate
/// limited independently of the event rate).
const SWEEP_INTERVAL: Duration = Duration::from_millis(50);
/// Keep-alive connections silent for this long are dropped.
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);
/// How long a graceful shutdown waits for in-flight work before
/// force-closing what remains.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Write buffers shrink back to this capacity after a burst, and a
/// partially-written buffer compacts once the consumed prefix passes it.
const WRITE_COMPACT: usize = 64 * 1024;

/// One fully rendered HTTP response, ready for a connection's write
/// buffer.
struct Rendered {
    bytes: Vec<u8>,
    /// Close the connection once this response is flushed.
    close: bool,
}

/// A response produced off-thread, routed back to its connection slot.
struct Completion {
    fd: RawFd,
    /// Guards against fd reuse: must match the connection's epoch.
    epoch: u64,
    seq: u64,
    rendered: Rendered,
}

/// One same-tick cache-missed query awaiting the grouped dispatch.
struct GroupJob {
    fd: RawFd,
    epoch: u64,
    seq: u64,
    keep_alive: bool,
    started: Instant,
    miss: Box<MissQuery>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Rendered-but-unflushed response bytes ([`out_pos`](Self::out_pos)
    /// marks the already-written prefix).
    outbuf: Vec<u8>,
    out_pos: usize,
    /// In-order response ledger: slot `i` holds the response for request
    /// `base_seq + i` once it completes; filled head slots promote to
    /// `outbuf`. Out-of-order completions wait their turn here.
    pending: VecDeque<Option<Rendered>>,
    /// Sequence number of the front pending slot.
    base_seq: u64,
    /// Sequence number the next parsed request will get.
    next_seq: u64,
    /// Monotonic connection identity (fd numbers are reused by the OS).
    epoch: u64,
    /// Interest bits currently registered with the poller.
    interest: u8,
    last_activity: Instant,
    /// When the currently-incomplete request's first byte arrived (the
    /// whole-request deadline anchor); `None` between requests.
    request_started: Option<Instant>,
    peer_eof: bool,
    /// Stop parsing new requests (close response queued, or draining).
    closing: bool,
    /// Close once `outbuf` is flushed and no responses remain pending.
    close_when_flushed: bool,
    /// Unrecoverable socket error: drop without further ceremony.
    broken: bool,
}

impl Conn {
    fn new(stream: TcpStream, epoch: u64) -> Self {
        Self {
            stream,
            parser: RequestParser::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            epoch,
            interest: READ,
            last_activity: Instant::now(),
            request_started: None,
            peer_eof: false,
            closing: false,
            close_when_flushed: false,
            broken: false,
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos == self.outbuf.len()
    }
}

/// Runs the event loop until shutdown completes. This is the body of the
/// `lshe-serve-reactor` thread.
pub(crate) fn run(listener: TcpListener, shared: &Arc<Shared>, waker: &Arc<Waker>) {
    let Ok(mut reactor) = Reactor::new(listener, Arc::clone(shared), Arc::clone(waker)) else {
        return; // no poller ⇒ no server; bind errors were already surfaced
    };
    reactor.run_loop();
}

struct Reactor {
    poller: Poller,
    waker: Arc<Waker>,
    waker_fd: RawFd,
    listener: Option<TcpListener>,
    listener_fd: RawFd,
    shared: Arc<Shared>,
    pool: ThreadPool,
    conns: HashMap<RawFd, Conn>,
    comp_tx: Sender<Completion>,
    comp_rx: Receiver<Completion>,
    /// Pool jobs in flight (drain waits for zero).
    outstanding: Arc<AtomicUsize>,
    epoch_counter: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
    /// Reused JSON render buffer for inline responses.
    scratch: String,
    /// Same-tick cache-missed queries, batched into one pool job.
    tick_queries: Vec<GroupJob>,
    next_sweep: Instant,
    events: Vec<Event>,
}

impl Reactor {
    fn new(listener: TcpListener, shared: Arc<Shared>, waker: Arc<Waker>) -> io::Result<Self> {
        let poller = Poller::new()?;
        let waker_fd = waker.fd();
        let listener_fd = listener.as_raw_fd();
        poller.register(waker_fd, waker_fd as u64, READ)?;
        poller.register(listener_fd, listener_fd as u64, READ)?;
        let pool = ThreadPool::new(shared.threads, "lshe-serve-worker");
        let (comp_tx, comp_rx) = std::sync::mpsc::channel();
        Ok(Self {
            poller,
            waker,
            waker_fd,
            listener: Some(listener),
            listener_fd,
            shared,
            pool,
            conns: HashMap::new(),
            comp_tx,
            comp_rx,
            outstanding: Arc::new(AtomicUsize::new(0)),
            epoch_counter: 0,
            draining: false,
            drain_deadline: None,
            scratch: String::new(),
            tick_queries: Vec::new(),
            next_sweep: Instant::now(),
            events: Vec::new(),
        })
    }

    fn run_loop(&mut self) {
        loop {
            if !self.draining && self.shared.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining && self.drain_complete() {
                break;
            }
            self.events.clear();
            let timeout = if self.draining { DRAIN_TICK } else { TICK };
            if self.poller.wait(&mut self.events, Some(timeout)).is_err() {
                break; // poller failure is unrecoverable
            }
            self.shared
                .server_stats
                .wakeups
                .fetch_add(1, Ordering::Relaxed);
            let events = std::mem::take(&mut self.events);
            for ev in &events {
                #[allow(clippy::cast_possible_truncation)]
                let fd = ev.token as RawFd;
                if fd == self.waker_fd {
                    self.waker.drain();
                } else if fd == self.listener_fd && self.listener.is_some() {
                    self.accept_ready();
                } else {
                    self.conn_event(fd, ev);
                }
            }
            self.events = events;
            self.drain_completions();
            self.dispatch_tick_queries();
            self.sweep_deadlines();
        }
    }

    /// Accepts until the listener would block. Over-cap connections are
    /// closed immediately (the kernel already completed the handshake;
    /// an instant EOF is the clearest refusal we can give).
    fn accept_ready(&mut self) {
        loop {
            let accepted = self.listener.as_ref().expect("listener checked").accept();
            match accepted {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.shared.max_connections {
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses go out in one small burst; Nagle + delayed
                    // ACK would add ~40 ms per keep-alive round trip.
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    self.epoch_counter += 1;
                    if self.poller.register(fd, fd as u64, READ).is_ok() {
                        self.shared
                            .counters
                            .connections
                            .fetch_add(1, Ordering::Relaxed);
                        self.conns.insert(fd, Conn::new(stream, self.epoch_counter));
                        self.shared
                            .server_stats
                            .open
                            .store(self.conns.len() as u64, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failures (ECONNABORTED, EMFILE, …)
                // must not kill the server; the level-triggered poller
                // re-reports on the next tick, which is our backoff.
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, fd: RawFd, ev: &Event) {
        let Some(mut conn) = self.conns.remove(&fd) else {
            return; // stale event for an fd closed earlier this tick
        };
        if ev.hangup && !ev.readable {
            conn.peer_eof = true;
        }
        if ev.readable {
            self.read_ready(&mut conn);
            self.parse_and_execute(fd, &mut conn);
        }
        self.finish_event(fd, conn);
    }

    /// Drains the socket into the parser, bounded per tick.
    fn read_ready(&mut self, conn: &mut Conn) {
        if conn.closing || conn.peer_eof || conn.broken {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut total = 0;
        loop {
            if conn.pending.len() >= MAX_PIPELINE {
                break; // backpressure: stop pulling bytes while saturated
            }
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.parser.feed(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    total += n;
                    if total >= PER_TICK_READ_MAX {
                        break; // level-triggered: the rest re-fires next tick
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.broken = true;
                    break;
                }
            }
        }
    }

    /// Parses every complete buffered request (up to the pipeline cap)
    /// and dispatches each one; a malformed request answers the valid
    /// prefix, queues its error, and marks the connection closing.
    fn parse_and_execute(&mut self, fd: RawFd, conn: &mut Conn) {
        while !conn.closing && !conn.broken && conn.pending.len() < MAX_PIPELINE {
            match conn.parser.next_request() {
                Ok(Some(request)) => {
                    conn.request_started = None;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.push_back(None);
                    self.shared
                        .server_stats
                        .pipeline_hwm
                        .fetch_max(conn.pending.len() as u64, Ordering::Relaxed);
                    self.dispatch_request(fd, conn, seq, request);
                }
                Ok(None) => break,
                Err(e) => {
                    self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let (status, reason) = match &e {
                        HttpError::TooLarge(_) => (413, "Payload Too Large"),
                        HttpError::Unsupported(_) => (501, "Not Implemented"),
                        _ => (400, "Bad Request"),
                    };
                    let outcome = Outcome::error(status, reason, e.to_string());
                    let bytes = server::render_outcome(&outcome, false, &mut self.scratch);
                    conn.pending
                        .push_back(Some(Rendered { bytes, close: true }));
                    conn.next_seq += 1;
                    conn.closing = true;
                    break;
                }
            }
        }
        // Anchor (or clear) the whole-request deadline: it runs only
        // while a request is partially read, not while the pipeline cap
        // is holding complete-but-unparsed requests back.
        if conn.closing || conn.parser.is_idle() || conn.pending.len() >= MAX_PIPELINE {
            conn.request_started = None;
        } else if conn.request_started.is_none() {
            conn.request_started = Some(Instant::now());
        }
    }

    /// Routes one request: cache-probe queries and cheap control
    /// endpoints inline, heavy work to the compute pool, cache-missed
    /// queries into the same-tick batch.
    fn dispatch_request(&mut self, fd: RawFd, conn: &mut Conn, seq: u64, request: Request) {
        let keep_alive = !request.wants_close();
        // Draining (or a /shutdown earlier in this very burst): refuse
        // with 503 + Retry-After so retry logic can tell drain from
        // failure. The close flag tears the connection down after it.
        if self.draining || self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            self.complete_local(conn, seq, &Outcome::draining(), keep_alive);
            return;
        }
        let is_query = matches!(
            (request.method.as_str(), request.path()),
            ("POST", "/query" | "/topk")
        );
        if is_query && request.body.len() <= INLINE_BODY_MAX {
            let require_k = request.path() == "/topk";
            let started = Instant::now();
            match server::query_step(&self.shared, &request.body, require_k, started) {
                QueryStep::Reply(outcome) => {
                    // Parse errors and cache hits answer without leaving
                    // the reactor thread.
                    if outcome.status >= 400 {
                        self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    self.complete_local(conn, seq, &outcome, keep_alive);
                }
                QueryStep::Miss(miss) => self.tick_queries.push(GroupJob {
                    fd,
                    epoch: conn.epoch,
                    seq,
                    keep_alive,
                    started,
                    miss,
                }),
            }
            return;
        }
        let heavy = matches!(
            (request.method.as_str(), request.path()),
            (
                "POST",
                "/query"
                    | "/topk"
                    | "/batch"
                    | "/reload"
                    | "/insert"
                    | "/remove"
                    | "/commit"
                    | "/compact"
            )
        );
        if heavy {
            self.dispatch_pool(fd, conn.epoch, seq, keep_alive, request);
        } else {
            // /health, /stats, /shutdown, 404, 405: O(µs) inline.
            let outcome = server::route(&self.shared, &request);
            if outcome.status >= 400 {
                self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            self.complete_local(conn, seq, &outcome, keep_alive);
        }
    }

    /// Renders an inline outcome straight into the connection's ledger.
    fn complete_local(&mut self, conn: &mut Conn, seq: u64, outcome: &Outcome, keep_alive: bool) {
        let ka = keep_alive && !outcome.close_after;
        let bytes = server::render_outcome(outcome, ka, &mut self.scratch);
        deliver(conn, seq, Rendered { bytes, close: !ka });
    }

    /// One generic pool job: route + render off-thread, completion back
    /// through the channel, waker poke so the reactor picks it up.
    fn dispatch_pool(&self, fd: RawFd, epoch: u64, seq: u64, keep_alive: bool, request: Request) {
        let shared = Arc::clone(&self.shared);
        let tx = self.comp_tx.clone();
        let waker = Arc::clone(&self.waker);
        let outstanding = Arc::clone(&self.outstanding);
        outstanding.fetch_add(1, Ordering::SeqCst);
        self.pool.execute(move || {
            let outcome = server::route(&shared, &request);
            if outcome.status >= 400 {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            let ka = keep_alive && !outcome.close_after;
            let mut scratch = String::new();
            let bytes = server::render_outcome(&outcome, ka, &mut scratch);
            let _ = tx.send(Completion {
                fd,
                epoch,
                seq,
                rendered: Rendered { bytes, close: !ka },
            });
            outstanding.fetch_sub(1, Ordering::SeqCst);
            waker.wake();
        });
    }

    /// Ships every cache-missed query decoded this tick as ONE pool job
    /// executing ONE batched dispatch — a burst of N concurrent clients
    /// costs one `search_batch` fan-out instead of N searches.
    fn dispatch_tick_queries(&mut self) {
        if self.tick_queries.is_empty() {
            return;
        }
        let jobs = std::mem::take(&mut self.tick_queries);
        let shared = Arc::clone(&self.shared);
        let tx = self.comp_tx.clone();
        let waker = Arc::clone(&self.waker);
        let outstanding = Arc::clone(&self.outstanding);
        outstanding.fetch_add(1, Ordering::SeqCst);
        self.pool.execute(move || {
            let refs: Vec<(&MissQuery, Instant)> =
                jobs.iter().map(|j| (&*j.miss, j.started)).collect();
            let outcomes = server::execute_miss_group(&shared, &refs);
            let mut scratch = String::new();
            for (job, outcome) in jobs.iter().zip(outcomes) {
                if outcome.status >= 400 {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                }
                let bytes = server::render_outcome(&outcome, job.keep_alive, &mut scratch);
                let _ = tx.send(Completion {
                    fd: job.fd,
                    epoch: job.epoch,
                    seq: job.seq,
                    rendered: Rendered {
                        bytes,
                        close: !job.keep_alive,
                    },
                });
            }
            outstanding.fetch_sub(1, Ordering::SeqCst);
            waker.wake();
        });
    }

    /// Collects finished pool work into connection ledgers. A completion
    /// may free pipeline slots, so buffered bytes get another parse pass.
    fn drain_completions(&mut self) {
        while let Ok(comp) = self.comp_rx.try_recv() {
            let Some(mut conn) = self.conns.remove(&comp.fd) else {
                continue; // connection died while the job ran
            };
            if conn.epoch != comp.epoch {
                // The fd was reused for a new connection: not ours.
                self.conns.insert(comp.fd, conn);
                continue;
            }
            deliver(&mut conn, comp.seq, comp.rendered);
            self.finish_event(comp.fd, conn);
        }
    }

    /// Flush → re-parse → repeat until quiescent, then update poller
    /// interest and either re-insert the connection or close it.
    fn finish_event(&mut self, fd: RawFd, mut conn: Conn) {
        loop {
            self.flush_conn(&mut conn);
            // Flushing pops answered head slots; freed pipeline capacity
            // may unlock already-buffered requests (which a level-
            // triggered poller would never re-announce on its own).
            let before = conn.next_seq;
            self.parse_and_execute(fd, &mut conn);
            if conn.next_seq == before {
                break;
            }
        }
        if conn.broken
            || (conn.close_when_flushed && conn.flushed() && conn.pending.is_empty())
            || (conn.peer_eof && conn.flushed() && conn.pending.is_empty())
        {
            self.close_conn(fd, conn);
            return;
        }
        let mut want = 0u8;
        if !conn.closing && !conn.peer_eof && conn.pending.len() < MAX_PIPELINE {
            want |= READ;
        }
        if !conn.flushed() {
            want |= WRITE;
        }
        if want != conn.interest {
            if self.poller.modify(fd, fd as u64, want).is_err() {
                self.close_conn(fd, conn);
                return;
            }
            conn.interest = want;
        }
        self.conns.insert(fd, conn);
    }

    /// Promotes in-order completed responses into the write buffer, then
    /// writes as much as the socket accepts.
    fn flush_conn(&mut self, conn: &mut Conn) {
        while matches!(conn.pending.front(), Some(Some(_))) {
            let rendered = conn
                .pending
                .pop_front()
                .flatten()
                .expect("front slot checked filled");
            conn.base_seq += 1;
            conn.outbuf.extend_from_slice(&rendered.bytes);
            if rendered.close {
                // Nothing after a close-flagged response may be sent:
                // drop any later pipelined work (stale completions are
                // discarded by the ledger bounds check).
                conn.closing = true;
                conn.close_when_flushed = true;
                conn.pending.clear();
                break;
            }
        }
        self.shared
            .server_stats
            .write_buf_hwm
            .fetch_max(conn.outbuf.len() as u64, Ordering::Relaxed);
        while conn.out_pos < conn.outbuf.len() {
            match (&conn.stream).write(&conn.outbuf[conn.out_pos..]) {
                Ok(0) => {
                    conn.broken = true;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.broken = true;
                    break;
                }
            }
        }
        if conn.flushed() {
            conn.outbuf.clear();
            conn.out_pos = 0;
            if conn.outbuf.capacity() > WRITE_COMPACT {
                conn.outbuf.shrink_to(WRITE_COMPACT);
            }
        } else if conn.out_pos >= WRITE_COMPACT {
            // Long partial writes: reclaim the consumed prefix so the
            // buffer cannot grow without bound under a slow reader.
            conn.outbuf.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
    }

    fn close_conn(&mut self, fd: RawFd, conn: Conn) {
        self.poller.deregister(fd);
        drop(conn); // dropping the TcpStream closes the fd
        self.shared
            .server_stats
            .open
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    /// Rate-limited O(connections) sweep: whole-request deadlines and
    /// idle keep-alive expiry.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        if now < self.next_sweep {
            return;
        }
        self.next_sweep = now + SWEEP_INTERVAL;
        let fds: Vec<RawFd> = self.conns.keys().copied().collect();
        for fd in fds {
            let Some(mut conn) = self.conns.remove(&fd) else {
                continue;
            };
            let timed_out = conn
                .request_started
                .is_some_and(|s| now.duration_since(s) >= self.shared.request_timeout);
            if timed_out && !conn.closing {
                // A slow-dripping request hit the whole-request deadline:
                // answer 400 (after any pipelined predecessors) and close.
                self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let outcome = Outcome::error(400, "Bad Request", "request read timed out");
                let bytes = server::render_outcome(&outcome, false, &mut self.scratch);
                conn.pending
                    .push_back(Some(Rendered { bytes, close: true }));
                conn.next_seq += 1;
                conn.closing = true;
                conn.request_started = None;
                self.finish_event(fd, conn);
                continue;
            }
            if now.duration_since(conn.last_activity) >= IDLE_TIMEOUT
                && conn.pending.is_empty()
                && conn.parser.is_idle()
            {
                self.close_conn(fd, conn);
                continue;
            }
            self.conns.insert(fd, conn);
        }
    }

    /// Stops accepting, answers every fully-buffered request with the
    /// drain 503, marks every connection for close-after-flush, and drops
    /// the ones with nothing left to say. In-flight pool work keeps its
    /// connections alive until the responses ship.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        if let Some(listener) = self.listener.take() {
            self.poller.deregister(self.listener_fd);
            drop(listener);
        }
        let fds: Vec<RawFd> = self.conns.keys().copied().collect();
        for fd in fds {
            let Some(mut conn) = self.conns.remove(&fd) else {
                continue;
            };
            // Complete buffered requests deserve an answer, not a silent
            // hangup: with `draining` set, each one routes to the 503 +
            // Retry-After refusal (never to a handler).
            self.parse_and_execute(fd, &mut conn);
            conn.closing = true;
            conn.close_when_flushed = true;
            self.finish_event(fd, conn);
        }
    }

    fn drain_complete(&self) -> bool {
        if self.conns.is_empty() && self.outstanding.load(Ordering::SeqCst) == 0 {
            return true;
        }
        // Grace expired: force-close what remains (dropping Conns closes
        // their sockets; dropping the pool joins its threads).
        self.drain_deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

/// Files a completed response into its ledger slot. Out-of-bounds
/// sequences (a slot discarded after a close-flagged response) are
/// dropped silently.
fn deliver(conn: &mut Conn, seq: u64, rendered: Rendered) {
    let Some(idx) = seq.checked_sub(conn.base_seq) else {
        return;
    };
    let idx = idx as usize;
    if idx < conn.pending.len() {
        conn.pending[idx] = Some(rendered);
    }
}
