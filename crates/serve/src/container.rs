//! The `.lshe` index-file container: ensemble + provenance + optional
//! ranked sketches, in one self-describing file.
//!
//! ```text
//! "LSHX" version:u8
//! flags:u8                      (bit 0: ranked sketches present)
//! num_perm:u32
//! meta_count:u64
//! per domain: id:u32 size:u64 table:str column:str
//! ensemble: u64 length + LshEnsemble bytes
//! if ranked: per domain (same order): signature slots u64 array
//! ```
//!
//! Two on-disk generations share this module. The v1 format above is
//! decoded wholesale into heap structures. The v2 format (`lshe-store`,
//! magic `LSHEIDX2`, see `docs/FORMAT.md`) is packed once from a ranked
//! container by [`IndexContainer::pack_v2`] and then **served in place**:
//! [`IndexContainer::load`] memory-maps it and queries run against
//! borrowed page-cache memory through [`MmapIndex`]. Mapped containers
//! are read-only — mutations are typed errors, never silent no-ops.

use lshe_core::{
    CommitReport, DomainIndex, EnsembleConfig, LshEnsemble, MmapIndex, MmapIndexError,
    MutableIndex, MutationError, PartitionStrategy, Query, RankedIndex, ShardedRanked,
};
use lshe_corpus::{Catalog, Domain, DomainMeta};
use lshe_minhash::codec::{CodecError, Decoder, Encoder};
use lshe_minhash::{MinHasher, Signature};
use lshe_store::{Packer, SectionKind};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Envelope tag for `.lshe` files.
pub const MAGIC: [u8; 4] = *b"LSHX";
/// Current container version. v2 appends the id allocator's high-water
/// mark so a restart never re-issues a removed domain's id; v1 files load
/// with the mark recomputed as `max(id) + 1`.
pub const VERSION: u8 = 2;

/// Provenance of one indexed domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRecord {
    /// Dense id (matches the ensemble's ids).
    pub id: u32,
    /// Distinct-value count.
    pub size: u64,
    /// Source table (CSV file stem).
    pub table: String,
    /// Source column.
    pub column: String,
}

/// What kind of index a container stores — the tag
/// [`open_index`](IndexContainer::open_index) dispatches on, so no caller
/// ever matches on a concrete index type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Ensemble only: threshold search, no estimates, no top-k.
    Plain,
    /// Ensemble plus per-domain sketches: estimates, top-k, and sharded
    /// serving are available.
    Ranked,
    /// A v2 file served in place through `mmap(2)`: estimates and top-k
    /// work (the sketches are on disk), but the container is read-only.
    Mapped,
}

/// The stored index, shared behind `Arc`s so
/// [`open_index`](IndexContainer::open_index) can hand out trait objects
/// without cloning forests or sketches.
#[derive(Debug, Clone)]
enum StoredIndex {
    Plain(Arc<LshEnsemble>),
    Ranked(Arc<RankedIndex>),
    Mapped(Arc<MmapIndex>),
}

/// A loaded (or freshly built) index file.
///
/// Cloning is cheap (the index is behind an `Arc`); the first mutation on
/// a clone copies the index (copy-on-write), which is how the server
/// commits staged mutations into a fresh snapshot while in-flight queries
/// keep the old one.
#[derive(Debug, Clone)]
pub struct IndexContainer {
    records: Vec<DomainRecord>,
    index: StoredIndex,
    num_perm: usize,
    /// Id allocator high-water mark: one past the largest id ever issued,
    /// monotone across removals (a removed id is never re-issued, so a
    /// stale reference can never silently resolve to a new domain).
    next_id: u32,
}

impl IndexContainer {
    /// Builds a container from a catalog: sketches every domain, builds the
    /// ensemble (retaining ranked sketches when `ranked`), and records
    /// provenance.
    ///
    /// # Panics
    /// Panics if the catalog is empty or `partitions == 0`.
    #[must_use]
    pub fn build(catalog: &Catalog, partitions: usize, ranked: bool) -> Self {
        assert!(!catalog.is_empty(), "catalog must not be empty");
        assert!(partitions > 0, "partitions must be positive");
        let hasher = MinHasher::new(lshe_minhash::DEFAULT_NUM_PERM);
        let config = EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: partitions },
            ..EnsembleConfig::default()
        };
        let mut records = Vec::with_capacity(catalog.len());
        let mut plain_builder = (!ranked).then(|| LshEnsemble::builder_with(config));
        let mut ranked_builder = ranked.then(|| RankedIndex::builder_with(config));
        // Sketch the whole catalog through the batched constructor: the
        // hash scratch is shared and the worker lanes are spawned once.
        let sets: Vec<&[u64]> = catalog.iter().map(|(_, d)| d.hashes()).collect();
        let signatures = hasher.bulk_signatures(&sets);
        for ((id, domain), sig) in catalog.iter().zip(signatures) {
            let meta = catalog.meta(id);
            records.push(DomainRecord {
                id,
                size: domain.len() as u64,
                table: meta.table.clone(),
                column: meta.column.clone(),
            });
            if let Some(rb) = ranked_builder.as_mut() {
                rb.add(id, domain.len() as u64, sig);
            } else if let Some(b) = plain_builder.as_mut() {
                b.add(id, domain.len() as u64, sig);
            }
        }
        let index = match ranked_builder {
            Some(rb) => StoredIndex::Ranked(Arc::new(rb.build())),
            None => StoredIndex::Plain(Arc::new(
                plain_builder.expect("plain builder present").build(),
            )),
        };
        let next_id = Self::high_water(&records);
        Self {
            records,
            index,
            num_perm: hasher.num_perm(),
            next_id,
        }
    }

    /// One past the largest id in `records` (0 when empty) — the floor for
    /// a freshly computed allocator mark.
    fn high_water(records: &[DomainRecord]) -> u32 {
        records.iter().map(|r| r.id).max().map_or(0, |id| id + 1)
    }

    /// Builds a container from a stream of domains, sketching and dropping
    /// each one as it arrives: peak memory is the index under construction
    /// (signatures and records), never the raw value sets. This is the
    /// constructor for corpora that do not fit in RAM — e.g. a
    /// `lshe_datagen::CorpusStream` scaled to multiple gigabytes.
    ///
    /// Value-identical to [`build`](Self::build) over a catalog containing
    /// the same domains in the same order.
    ///
    /// # Panics
    /// Panics if the stream is empty or `partitions == 0`.
    pub fn from_stream<I>(domains: I, partitions: usize, ranked: bool) -> Self
    where
        I: IntoIterator<Item = (Domain, DomainMeta)>,
    {
        assert!(partitions > 0, "partitions must be positive");
        let hasher = MinHasher::new(lshe_minhash::DEFAULT_NUM_PERM);
        let config = EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: partitions },
            ..EnsembleConfig::default()
        };
        let mut records = Vec::new();
        let mut plain_builder = (!ranked).then(|| LshEnsemble::builder_with(config));
        let mut ranked_builder = ranked.then(|| RankedIndex::builder_with(config));
        for (id, (domain, meta)) in (0u32..).zip(domains) {
            let sig = hasher.signature(domain.hashes().iter().copied());
            records.push(DomainRecord {
                id,
                size: domain.len() as u64,
                table: meta.table,
                column: meta.column,
            });
            if let Some(rb) = ranked_builder.as_mut() {
                rb.add(id, domain.len() as u64, sig);
            } else if let Some(b) = plain_builder.as_mut() {
                b.add(id, domain.len() as u64, sig);
            }
        }
        assert!(!records.is_empty(), "stream must yield at least one domain");
        let index = match ranked_builder {
            Some(rb) => StoredIndex::Ranked(Arc::new(rb.build())),
            None => StoredIndex::Plain(Arc::new(
                plain_builder.expect("plain builder present").build(),
            )),
        };
        let next_id = Self::high_water(&records);
        Self {
            records,
            index,
            num_perm: hasher.num_perm(),
            next_id,
        }
    }

    /// Signature width the index was built with (clients must sketch
    /// queries at this width).
    #[must_use]
    pub fn num_perm(&self) -> usize {
        self.num_perm
    }

    /// Number of indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the container holds no domains (cannot occur via `build`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The shared ensemble (either standalone or inside the ranked index).
    ///
    /// Mapped containers have no heap ensemble; every caller below either
    /// guards on the variant first or documents the panic.
    fn ensemble(&self) -> &LshEnsemble {
        match &self.index {
            StoredIndex::Plain(e) => e,
            StoredIndex::Ranked(r) => r.ensemble(),
            StoredIndex::Mapped(_) => panic!("mapped container has no heap ensemble"),
        }
    }

    /// The ensemble configuration, whichever variant stores it.
    fn config(&self) -> EnsembleConfig {
        match &self.index {
            StoredIndex::Plain(e) => *e.config(),
            StoredIndex::Ranked(r) => *r.ensemble().config(),
            StoredIndex::Mapped(m) => *m.config(),
        }
    }

    /// Per-partition statistics, whichever variant computes them.
    fn partition_stats(&self) -> Vec<lshe_core::PartitionStats> {
        match &self.index {
            StoredIndex::Plain(e) => e.partition_stats(),
            StoredIndex::Ranked(r) => r.ensemble().partition_stats(),
            StoredIndex::Mapped(m) => m.partition_stats(),
        }
    }

    /// The kind of index this container stores.
    #[must_use]
    pub fn kind(&self) -> IndexKind {
        match &self.index {
            StoredIndex::Plain(_) => IndexKind::Plain,
            StoredIndex::Ranked(_) => IndexKind::Ranked,
            StoredIndex::Mapped(_) => IndexKind::Mapped,
        }
    }

    /// Opens the stored index behind the unified query surface. Cheap
    /// (clones an `Arc`): the returned handle shares the container's
    /// forests and sketches (or, for a mapped container, its pages).
    #[must_use]
    pub fn open_index(&self) -> Box<dyn DomainIndex> {
        match &self.index {
            StoredIndex::Plain(e) => Box::new(Arc::clone(e)),
            StoredIndex::Ranked(r) => Box::new(Arc::clone(r)),
            StoredIndex::Mapped(m) => Box::new(Arc::clone(m)),
        }
    }

    /// Opens the stored index fanned out across `shards` query shards
    /// (the paper's §6.3 topology). `shards <= 1` is the plain
    /// [`open_index`](Self::open_index).
    ///
    /// # Errors
    /// A message when the container stores no sketches (sharded serving
    /// re-sharpens per-shard partitions from them) or holds fewer domains
    /// than shards.
    pub fn open_index_sharded(&self, shards: usize) -> Result<Box<dyn DomainIndex>, String> {
        if shards <= 1 {
            return Ok(self.open_index());
        }
        let StoredIndex::Ranked(ranked) = &self.index else {
            return Err(match self.kind() {
                IndexKind::Mapped => "an mmap-served index cannot be sharded in process; \
                     `lshe split` the source container, pack each shard, and serve them \
                     as a cluster"
                    .into(),
                _ => "--shards needs per-domain sketches; rebuild the index with --ranked".into(),
            });
        };
        if self.len() < shards {
            return Err(format!(
                "cannot split {} domains across {shards} shards",
                self.len()
            ));
        }
        Ok(Box::new(ShardedRanked::build(
            Arc::clone(ranked),
            shards,
            self.shard_config(shards),
        )))
    }

    /// The per-shard ensemble configuration for an `N`-way split — shared
    /// by [`open_index_sharded`](Self::open_index_sharded) and
    /// [`split_with`](Self::split_with) so an in-process shard and a
    /// split-out shard container are built identically.
    fn shard_config(&self, shards: usize) -> EnsembleConfig {
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth {
                n: self.partition_count().div_ceil(shards).max(1),
            },
            ..EnsembleConfig::default()
        }
    }

    /// Partitions a ranked container into `num_shards` standalone shard
    /// containers, routing each domain with `place(id, num_shards)`.
    ///
    /// Each output holds the routed subset of records and sketches plus a
    /// freshly built ensemble using the same per-shard configuration as
    /// [`open_index_sharded`](Self::open_index_sharded). With the modular
    /// placement the cluster coordinator uses (`id % num_shards`) and the
    /// dense ids `build` assigns, every output ensemble is bit-identical
    /// to the matching in-process shard of a `--shards num_shards` server
    /// — so a process cluster over the split files answers exactly like
    /// the single sharded process.
    ///
    /// # Errors
    /// A message when the container stores no sketches, holds fewer
    /// domains than shards, `num_shards < 2`, or the placement leaves a
    /// shard empty / routes out of range.
    pub fn split_with(
        &self,
        num_shards: usize,
        place: impl Fn(u32, usize) -> usize,
    ) -> Result<Vec<IndexContainer>, String> {
        if num_shards < 2 {
            return Err("split needs at least 2 shards".into());
        }
        let StoredIndex::Ranked(ranked) = &self.index else {
            return Err(match self.kind() {
                IndexKind::Mapped => {
                    "split works on the source .lshe container, not a packed v2 file; \
                     split first, then pack each shard"
                        .into()
                }
                _ => "split needs per-domain sketches; rebuild the index with --ranked".into(),
            });
        };
        if self.len() < num_shards {
            return Err(format!(
                "cannot split {} domains across {num_shards} shards",
                self.len()
            ));
        }
        let config = self.shard_config(num_shards);
        // Route every sketch entry; entries are sorted by id, so each
        // shard's parallel arrays stay id-sorted like a fresh build's.
        let mut parts: Vec<(Vec<u32>, Vec<u64>, Vec<&Signature>)> =
            (0..num_shards).map(|_| Default::default()).collect();
        for (id, size, sig) in ranked.sketch_entries() {
            let s = place(id, num_shards);
            if s >= num_shards {
                return Err(format!(
                    "placement routed id {id} to shard {s} of {num_shards}"
                ));
            }
            parts[s].0.push(id);
            parts[s].1.push(size);
            parts[s].2.push(sig);
        }
        if let Some(empty) = parts.iter().position(|(ids, _, _)| ids.is_empty()) {
            return Err(format!("placement leaves shard {empty} empty"));
        }
        Ok(parts
            .iter()
            .map(|(ids, sizes, sigs)| {
                let ensemble = LshEnsemble::build_from_parts(config, ids, sizes, sigs);
                let sketches: Vec<(u32, u64, Signature)> = ids
                    .iter()
                    .zip(sizes)
                    .zip(sigs)
                    .map(|((&id, &size), &sig)| (id, size, sig.clone()))
                    .collect();
                let records: Vec<DomainRecord> = ids
                    .iter()
                    .map(|&id| {
                        self.record(id)
                            .expect("every sketch id has a provenance record")
                            .clone()
                    })
                    .collect();
                let next_id = Self::high_water(&records).max(self.next_id);
                IndexContainer {
                    records,
                    index: StoredIndex::Ranked(Arc::new(RankedIndex::from_ensemble(
                        ensemble, sketches,
                    ))),
                    num_perm: self.num_perm,
                    next_id,
                }
            })
            .collect())
    }

    /// The stored index as its mutation surface (copy-on-write: shared
    /// `Arc`s are cloned on first mutation). Callers guard the mapped
    /// variant first ([`apply`](Self::apply) returns a typed error).
    fn index_mut(&mut self) -> &mut dyn MutableIndex {
        match &mut self.index {
            StoredIndex::Plain(e) => Arc::make_mut(e) as &mut dyn MutableIndex,
            StoredIndex::Ranked(r) => Arc::make_mut(r) as &mut dyn MutableIndex,
            StoredIndex::Mapped(_) => unreachable!("mutation paths reject mapped containers"),
        }
    }

    /// The smallest id safely assignable to a new domain: the persisted
    /// allocator high-water mark. Monotone across removals — removing the
    /// highest-id domain does **not** free its id for reuse, so references
    /// held by clients (or staged in a delta log) can never silently
    /// rebind to a different domain after a restart.
    #[must_use]
    pub fn next_id(&self) -> u32 {
        self.next_id
    }

    /// Raises the allocator high-water mark (never lowers it). The engine
    /// calls this before persisting so ids handed out to staged-then-
    /// cancelled inserts stay burned across restarts.
    pub fn reserve_next_id(&mut self, next_id: u32) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Applies a batch of staged mutations in order: inserts stage into
    /// the index (immediately queryable) and append provenance records;
    /// removes apply eagerly and drop their record. Stops at the first
    /// failing op — earlier ops in the batch stay applied. Call
    /// [`commit_mutations`](Self::commit_mutations) afterwards to fold and
    /// rebalance.
    ///
    /// # Errors
    /// [`MutationError`] from the failing op: duplicate id, unknown id, a
    /// signature whose width disagrees with the container, or any op at
    /// all against a read-only mapped container.
    pub fn apply(&mut self, ops: &[DeltaOp]) -> Result<usize, MutationError> {
        if matches!(self.index, StoredIndex::Mapped(_)) && !ops.is_empty() {
            return Err(MutationError::Invalid(
                "mmap-served index is read-only; mutate the source .lshe container \
                 and re-pack"
                    .into(),
            ));
        }
        for (applied, op) in ops.iter().enumerate() {
            match op {
                DeltaOp::Insert { record, signature } => {
                    if signature.len() != self.num_perm {
                        return Err(MutationError::Invalid(format!(
                            "signature width mismatch at op {applied}: domain has {}, container expects {}",
                            signature.len(),
                            self.num_perm
                        )));
                    }
                    self.index_mut().insert(record.id, record.size, signature)?;
                    let at = self
                        .records
                        .binary_search_by_key(&record.id, |r| r.id)
                        .expect_err("index insert rejects duplicates");
                    self.records.insert(at, record.clone());
                    self.next_id = self.next_id.max(record.id + 1);
                }
                DeltaOp::Remove { id } => {
                    self.index_mut().remove(*id)?;
                    self.records.retain(|r| r.id != *id);
                }
                DeltaOp::Commit { next_id } => {
                    // Log-replay bookkeeping, not a mutation: the engine
                    // splits batches at these markers, but a marker that
                    // does reach a batch only raises the allocator mark.
                    self.next_id = self.next_id.max(*next_id);
                }
            }
        }
        Ok(ops.len())
    }

    /// Seals the staged delta into an immutable segment — O(staged), never
    /// O(corpus). Must run before [`to_bytes`](Self::to_bytes), whose byte
    /// form is always the canonical committed state (base + segment stack).
    pub fn commit_mutations(&mut self) -> CommitReport {
        if matches!(self.index, StoredIndex::Mapped(_)) {
            // Nothing can be staged into a read-only container.
            return CommitReport::default();
        }
        self.index_mut().commit()
    }

    /// Folds every sealed segment (and drops every tombstone) into the
    /// base partitioning — the O(corpus) merge that segmented commits keep
    /// off the commit path. Seals any still-staged delta first.
    pub fn compact_index(&mut self) -> CommitReport {
        if matches!(self.index, StoredIndex::Mapped(_)) {
            return CommitReport::default();
        }
        self.index_mut().compact()
    }

    /// Sealed-segment and tombstone counts of the stored index (mapped
    /// containers report the stack replayed from the packed file).
    #[must_use]
    pub fn segment_stats(&self) -> lshe_core::SegmentStats {
        match &self.index {
            StoredIndex::Plain(e) => e.segment_stats(),
            StoredIndex::Ranked(r) => r.segment_stats(),
            StoredIndex::Mapped(m) => m.segment_stats(),
        }
    }

    /// The stored index's tier layout (per-segment entry counts plus
    /// tombstone backlog), for merge planning. Mapped containers are
    /// read-only and report an empty layout — nothing is plannable.
    #[must_use]
    pub fn segment_layout(&self) -> lshe_core::SegmentLayout {
        match &self.index {
            StoredIndex::Plain(e) => e.segment_layout(),
            StoredIndex::Ranked(r) => r.segment_layout(),
            StoredIndex::Mapped(_) => lshe_core::SegmentLayout {
                segments: Vec::new(),
                tombstones: 0,
                len: self.len(),
            },
        }
    }

    /// Executes one planned merge task on the stored index:
    /// [`lshe_core::MergeTask::Merge`] folds only the listed segments
    /// (O(folded entries)), [`lshe_core::MergeTask::Full`] folds
    /// everything like [`compact_index`](Self::compact_index). A no-op on
    /// read-only mapped containers.
    pub fn apply_merge(&mut self, task: &lshe_core::MergeTask) -> lshe_core::MergeOutcome {
        if matches!(self.index, StoredIndex::Mapped(_)) {
            return lshe_core::MergeOutcome::default();
        }
        self.index_mut().apply_merge(task)
    }

    /// Number of staged (uncommitted) inserts in the stored index.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        match &self.index {
            StoredIndex::Plain(e) => e.staged_len(),
            StoredIndex::Ranked(r) => r.staged_len(),
            StoredIndex::Mapped(_) => 0,
        }
    }

    /// Number of size partitions in the ensemble.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partition_stats().len()
    }

    /// Provenance records for every indexed domain, in build order.
    #[must_use]
    pub fn records(&self) -> &[DomainRecord] {
        &self.records
    }

    /// Looks up one provenance record by domain id. Records are stored in
    /// ascending-id build order, so this is a binary search with a linear
    /// fallback for containers whose ids arrived unsorted.
    #[must_use]
    pub fn record(&self, id: u32) -> Option<&DomainRecord> {
        match self.records.binary_search_by_key(&id, |r| r.id) {
            Ok(i) => Some(&self.records[i]),
            Err(_) => self.records.iter().find(|r| r.id == id),
        }
    }

    /// True when the container stores per-domain ranked sketches (built
    /// with `--ranked`, or packed into a v2 file), enabling
    /// [`Self::top_k`] and containment estimates.
    #[must_use]
    pub fn has_ranked(&self) -> bool {
        matches!(self.kind(), IndexKind::Ranked | IndexKind::Mapped)
    }

    /// The stored (size, sketch) for a domain, when heap-resident ranked
    /// sketches are present. Mapped containers keep sketches on disk and
    /// return `None` here — query through [`open_index`](Self::open_index)
    /// instead.
    #[must_use]
    pub fn sketch(&self, id: u32) -> Option<(u64, &Signature)> {
        match &self.index {
            StoredIndex::Ranked(r) => r.sketch(id),
            StoredIndex::Plain(_) | StoredIndex::Mapped(_) => None,
        }
    }

    /// Provenance lookup: (table, column, size).
    ///
    /// # Panics
    /// Panics if `id` was never indexed.
    #[must_use]
    pub fn provenance(&self, id: u32) -> (&str, &str, u64) {
        let rec = self.record(id).expect("id was indexed");
        (&rec.table, &rec.column, rec.size)
    }

    /// Threshold search; estimates are attached when sketches are stored.
    /// Thin wrapper over the [`DomainIndex`] surface.
    ///
    /// # Panics
    /// Panics on malformed query inputs (width mismatch, zero size,
    /// out-of-range threshold) — use [`open_index`](Self::open_index) for
    /// typed errors.
    #[must_use]
    pub fn search(&self, sig: &Signature, q: u64, t_star: f64) -> Vec<(u32, Option<f64>)> {
        let query = Query::threshold(sig, t_star).with_size(q);
        self.open_index()
            .search(&query)
            .expect("valid threshold query")
            .into_pairs()
    }

    /// Top-k search (requires ranked sketches). Thin wrapper over the
    /// [`DomainIndex`] surface.
    ///
    /// # Errors
    /// Returns a message when the container was built without `--ranked`.
    pub fn top_k(
        &self,
        sig: &Signature,
        q: u64,
        k: usize,
    ) -> Result<Vec<(u32, Option<f64>)>, String> {
        let query = Query::top_k(sig, k).with_size(q);
        self.open_index()
            .search(&query)
            .map(lshe_core::SearchOutcome::into_pairs)
            .map_err(|e| e.to_string())
    }

    /// Human-readable description (the `stats` subcommand). The index
    /// summary line and memory figure come from the [`DomainIndex`]
    /// surface, so every backend reports through the same channel.
    #[must_use]
    pub fn describe(&self) -> String {
        let index = self.open_index();
        let mut out = String::new();
        let config = self.config();
        let _ = writeln!(out, "index: {}", index.describe());
        let _ = writeln!(out, "domains: {}", self.len());
        let _ = writeln!(out, "num_perm: {}", config.num_perm);
        let _ = writeln!(
            out,
            "forest: {} trees × depth {}",
            config.b_max, config.r_max
        );
        let _ = writeln!(
            out,
            "ranked sketches: {}",
            if self.has_ranked() { "yes" } else { "no" }
        );
        let _ = writeln!(out, "memory: {} bytes", index.memory_bytes());
        let stats = self.partition_stats();
        let _ = writeln!(out, "partitions: {}", stats.len());
        let _ = writeln!(out, "  #\tsize_range\tdomains");
        for (i, p) in stats.iter().enumerate() {
            let _ = writeln!(out, "  {i}\t[{}, {}]\t{}", p.lower, p.upper, p.count);
        }
        out
    }

    /// Serialises the container in the v1 format.
    ///
    /// # Panics
    /// Panics on a mapped container — a v2 file *is* its serialised form;
    /// it is produced by [`pack_v2`](Self::pack_v2), never rewritten.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(
            !matches!(self.index, StoredIndex::Mapped(_)),
            "mapped containers are not re-serialised; the packed file is canonical"
        );
        let mut enc = Encoder::with_capacity(64 + self.records.len() * 48);
        enc.envelope(MAGIC, VERSION);
        enc.put_u8(u8::from(self.has_ranked()));
        enc.put_u32(self.num_perm as u32);
        enc.put_u64(self.records.len() as u64);
        for rec in &self.records {
            enc.put_u32(rec.id);
            enc.put_u64(rec.size);
            enc.put_str(&rec.table);
            enc.put_str(&rec.column);
        }
        let eb = self.ensemble().to_bytes_committed();
        enc.put_u64(eb.len() as u64);
        for b in eb {
            enc.put_u8(b);
        }
        if let StoredIndex::Ranked(ranked) = &self.index {
            for rec in &self.records {
                let (_, sig) = ranked
                    .sketch(rec.id)
                    .expect("ranked index holds every record");
                enc.put_u64_slice(sig.slots());
            }
        }
        // v2 trailer: the allocator high-water mark survives restarts.
        enc.put_u32(self.next_id);
        enc.finish()
    }

    /// Deserialises a v1 container.
    ///
    /// # Errors
    /// [`CodecError`] on truncation, tag/version mismatch, or structural
    /// inconsistencies. Prefer [`load`](Self::load) when reading from a
    /// file: it reports the path and failing section, and transparently
    /// handles packed v2 files.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        Self::decode_v1(bytes).map_err(|(_, e)| e)
    }

    /// The v1 decoder, reporting which part of the file failed alongside
    /// the codec error — [`load`](Self::load) surfaces both.
    fn decode_v1(bytes: &[u8]) -> Result<Self, (&'static str, CodecError)> {
        let mut dec = Decoder::new(bytes);
        let hdr = |e| ("header", e);
        let version = dec.envelope(MAGIC).map_err(hdr)?;
        if version > VERSION {
            return Err(hdr(CodecError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            }));
        }
        let has_ranked = dec.get_u8("flags").map_err(hdr)? != 0;
        let num_perm = dec.get_u32("num_perm").map_err(hdr)? as usize;
        let count = dec.get_u64("meta count").map_err(hdr)? as usize;
        let rcs = |e| ("domain records", e);
        let mut records = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            records.push(DomainRecord {
                id: dec.get_u32("record id").map_err(rcs)?,
                size: dec.get_u64("record size").map_err(rcs)?,
                table: dec.get_str("record table").map_err(rcs)?,
                column: dec.get_str("record column").map_err(rcs)?,
            });
        }
        let ens = |e| ("ensemble", e);
        let eb_len = dec.get_u64("ensemble length").map_err(ens)? as usize;
        if eb_len > dec.remaining() {
            return Err(ens(CodecError::Corrupt("ensemble payload exceeds input")));
        }
        let mut eb = Vec::with_capacity(eb_len);
        for _ in 0..eb_len {
            eb.push(dec.get_u8("ensemble bytes").map_err(ens)?);
        }
        let ensemble = LshEnsemble::from_bytes(&eb).map_err(ens)?;
        if ensemble.len() != records.len() {
            return Err(ens(CodecError::Corrupt(
                "record count disagrees with ensemble",
            )));
        }
        let sk = |e| ("sketches", e);
        let index = if has_ranked {
            // Reattach the sketches to the already-decoded ensemble
            // instead of rebuilding every partition forest from scratch.
            let mut sketches = Vec::with_capacity(records.len());
            for rec in &records {
                let slots = dec.get_u64_vec("sketch slots").map_err(sk)?;
                if slots.len() != num_perm {
                    return Err(sk(CodecError::Corrupt(
                        "sketch width disagrees with config",
                    )));
                }
                if rec.size == 0 {
                    return Err(sk(CodecError::Corrupt(
                        "zero-size record in ranked container",
                    )));
                }
                sketches.push((rec.id, rec.size, Signature::from_slots(slots)));
            }
            let mut seen: Vec<u32> = sketches.iter().map(|&(id, _, _)| id).collect();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(sk(CodecError::Corrupt("duplicate id in ranked container")));
            }
            StoredIndex::Ranked(Arc::new(RankedIndex::from_ensemble(ensemble, sketches)))
        } else {
            StoredIndex::Plain(Arc::new(ensemble))
        };
        // v1 files predate the persisted allocator mark; recompute the
        // conservative floor (which is exactly what v1 servers did).
        let next_id = if version >= 2 {
            dec.get_u32("next id")
                .map_err(|e| ("allocator mark", e))?
                .max(Self::high_water(&records))
        } else {
            Self::high_water(&records)
        };
        if !dec.is_exhausted() {
            return Err(sk(CodecError::Corrupt("trailing bytes after container")));
        }
        Ok(Self {
            records,
            index,
            num_perm,
            next_id,
        })
    }

    /// Loads an index file of either generation: a v1 `.lshe` container
    /// is decoded into heap structures, a packed v2 file (magic
    /// `LSHEIDX2`) is checksum-verified and memory-mapped in place. The
    /// format is detected from the file's magic, so callers never pass a
    /// format flag.
    ///
    /// # Errors
    /// [`LoadError`], carrying the file path and (for decode and checksum
    /// failures) the section that failed.
    pub fn load(path: &Path) -> Result<Self, LoadError> {
        let io_err = |source| LoadError::Io {
            path: path.to_owned(),
            source,
        };
        let mut head = [0u8; 8];
        let filled = {
            use std::io::Read as _;
            let mut file = std::fs::File::open(path).map_err(io_err)?;
            let mut filled = 0;
            while filled < head.len() {
                match file.read(&mut head[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(io_err(e)),
                }
            }
            filled
        };
        if filled == head.len() && head == lshe_store::MAGIC {
            return Self::open_mapped(path);
        }
        let bytes = std::fs::read(path).map_err(io_err)?;
        Self::decode_v1(&bytes).map_err(|(section, source)| LoadError::Decode {
            path: path.to_owned(),
            section,
            source,
        })
    }

    /// Opens a packed v2 file as a read-only mapped container: structural
    /// validation plus a full checksum pass over every section (the
    /// serving path never trusts unverified bytes), then the provenance
    /// records are decoded from their sections.
    ///
    /// # Errors
    /// [`LoadError::Store`] naming the failing section, or
    /// [`LoadError::Io`] from `open(2)`/`mmap(2)`.
    pub fn open_mapped(path: &Path) -> Result<Self, LoadError> {
        let store_err = |source| LoadError::Store {
            path: path.to_owned(),
            source,
        };
        let mapped = MmapIndex::open_verified(path).map_err(store_err)?;
        let records = Self::decode_packed_records(&mapped).map_err(store_err)?;
        let num_perm = mapped.config().num_perm;
        let next_id = mapped.next_id_hint().max(Self::high_water(&records));
        Ok(Self {
            records,
            index: StoredIndex::Mapped(Arc::new(mapped)),
            num_perm,
            next_id,
        })
    }

    /// Decodes the provenance records packed next to the index sections
    /// by [`pack_v2`](Self::pack_v2).
    fn decode_packed_records(mapped: &MmapIndex) -> Result<Vec<DomainRecord>, MmapIndexError> {
        let corrupt = |section: SectionKind, detail: &'static str| {
            MmapIndexError::from(lshe_store::StoreError::Corrupt {
                section: section.name(),
                detail,
            })
        };
        let store = mapped.store();
        let offsets = store.u64s(SectionKind::RecordOffsets)?;
        let blob = store.bytes(SectionKind::Records)?;
        let count = offsets
            .len()
            .checked_sub(1)
            .ok_or_else(|| corrupt(SectionKind::RecordOffsets, "offsets table is empty"))?;
        if count != mapped.len() {
            return Err(corrupt(
                SectionKind::RecordOffsets,
                "record count disagrees with index length",
            ));
        }
        if offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets[count] != blob.len() as u64
        {
            return Err(corrupt(
                SectionKind::RecordOffsets,
                "offsets are not a monotone cover of the records blob",
            ));
        }
        let codec = |source| MmapIndexError::Codec {
            section: SectionKind::Records.name(),
            source,
        };
        let mut records = Vec::with_capacity(count);
        for pair in offsets.windows(2) {
            let mut dec = Decoder::new(&blob[pair[0] as usize..pair[1] as usize]);
            records.push(DomainRecord {
                id: dec.get_u32("record id").map_err(codec)?,
                size: dec.get_u64("record size").map_err(codec)?,
                table: dec.get_str("record table").map_err(codec)?,
                column: dec.get_str("record column").map_err(codec)?,
            });
            if !dec.is_exhausted() {
                return Err(corrupt(SectionKind::Records, "trailing bytes after record"));
            }
        }
        Ok(records)
    }

    /// Packs this container into a v2 file at `path`: the checksummed,
    /// 64-byte-aligned `lshe-store` format that [`load`](Self::load)
    /// serves in place (see `docs/FORMAT.md`). The index sections are
    /// written by [`lshe_core::pack_ranked`]; the provenance records ride
    /// along as two extra sections (an offsets table plus a blob of codec
    /// records) so a mapped server answers hit provenance and `/stats`
    /// without the source file.
    ///
    /// # Errors
    /// A message when the container stores no sketches (plain indexes
    /// have nothing to rank from disk; rebuild with `--ranked`), when it
    /// is already mapped, when mutations are staged (commit first), or on
    /// I/O failure.
    pub fn pack_v2(&self, path: &Path) -> Result<(), String> {
        let StoredIndex::Ranked(ranked) = &self.index else {
            return Err(match self.kind() {
                IndexKind::Mapped => "index is already a packed v2 file".into(),
                _ => "pack needs per-domain sketches; rebuild the index with --ranked".into(),
            });
        };
        if self.staged_len() > 0 {
            return Err("commit staged mutations before packing".into());
        }
        let io = |e: std::io::Error| format!("{}: {e}", path.display());
        let mut packer = Packer::create(path).map_err(io)?;
        lshe_core::pack_ranked_with(ranked, &mut packer, self.next_id).map_err(io)?;
        // Provenance: one codec blob per record, sliced by an offsets
        // table of count + 1 entries (the last is the blob length).
        let mut offsets: Vec<u64> = Vec::with_capacity(self.records.len() + 1);
        let mut blob: Vec<u8> = Vec::with_capacity(self.records.len() * 48);
        for rec in &self.records {
            offsets.push(blob.len() as u64);
            let mut enc = Encoder::with_capacity(24 + rec.table.len() + rec.column.len());
            enc.put_u32(rec.id);
            enc.put_u64(rec.size);
            enc.put_str(&rec.table);
            enc.put_str(&rec.column);
            blob.extend_from_slice(&enc.finish());
        }
        offsets.push(blob.len() as u64);
        packer
            .begin_section(SectionKind::RecordOffsets)
            .map_err(io)?;
        packer.write_u64s(&offsets).map_err(io)?;
        packer.end_section();
        packer.begin_section(SectionKind::Records).map_err(io)?;
        packer.write(&blob).map_err(io)?;
        packer.end_section();
        packer.finish().map_err(io)
    }
}

/// Why an index file could not be loaded — every variant carries the file
/// path, and decode/verification failures name the failing section, so a
/// bad index never reports a bare codec error (the operator knows *which
/// file* and *which part* without re-running under a debugger).
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem problem (open, read, or mmap).
    Io {
        /// The index file being loaded.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A v1 container failed to decode.
    Decode {
        /// The index file being loaded.
        path: PathBuf,
        /// Which part of the container was being decoded ("header",
        /// "domain records", "ensemble", or "sketches").
        section: &'static str,
        /// The underlying codec error.
        source: CodecError,
    },
    /// A packed v2 file failed structural validation, a checksum, or
    /// cross-section consistency (the inner error names the section).
    Store {
        /// The index file being loaded.
        path: PathBuf,
        /// The underlying store/index error.
        source: MmapIndexError,
    },
}

impl LoadError {
    /// The index file that failed to load.
    #[must_use]
    pub fn path(&self) -> &Path {
        match self {
            Self::Io { path, .. } | Self::Decode { path, .. } | Self::Store { path, .. } => path,
        }
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => {
                write!(f, "index file {}: {source}", path.display())
            }
            Self::Decode {
                path,
                section,
                source,
            } => write!(
                f,
                "index file {}: {section} section: {source}",
                path.display()
            ),
            Self::Store { path, source } => {
                write!(f, "index file {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Decode { source, .. } => Some(source),
            Self::Store { source, .. } => Some(source),
        }
    }
}

// ------------------------------------------------------------- delta log

/// Envelope tag for `.delta` sidecar files.
pub const DELTA_MAGIC: [u8; 4] = *b"LSHD";
/// Current delta-log format version. v2 widens the header with the id
/// allocator's high-water mark at log creation (4 bytes) and adds the
/// [`DeltaOp::Commit`] marker; v1 logs (5-byte header, no markers) still
/// read back as one all-staged tail.
pub const DELTA_VERSION: u8 = 2;

/// One staged mutation, as recorded in the append-only delta log.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Stage a new domain: provenance record plus its MinHash signature.
    Insert {
        /// Provenance (id, size, table, column) of the new domain.
        record: DomainRecord,
        /// The domain's signature at the container's `num_perm`.
        signature: Signature,
    },
    /// Remove a domain by id.
    Remove {
        /// The id to remove.
        id: u32,
    },
    /// Commit marker: every op before it (since the previous marker) was
    /// sealed into one segment and acknowledged. Appending this single
    /// entry *is* the commit's durability step — no base rewrite — and
    /// replaying the log batch-by-batch at boot reproduces the exact
    /// segment stack that was acked.
    Commit {
        /// The allocator high-water mark at commit time.
        next_id: u32,
    },
}

/// Why a delta log could not be read back.
#[derive(Debug)]
pub enum DeltaError {
    /// Filesystem problem.
    Io(std::io::Error),
    /// The log's header or an entry's payload is structurally invalid.
    Corrupt(String),
    /// The log ends mid-entry — the classic torn write of a crash during
    /// append. The prefix before `entries` decoded cleanly.
    Torn {
        /// Entries that decoded cleanly before the tear.
        entries: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "delta log i/o error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt delta log: {msg}"),
            Self::Torn { entries } => write!(
                f,
                "torn delta log: truncated entry after {entries} complete entries"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<std::io::Error> for DeltaError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// FNV-1a over an entry payload — the per-entry integrity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_op(op: &DeltaOp) -> Vec<u8> {
    let mut enc = Encoder::default();
    match op {
        DeltaOp::Insert { record, signature } => {
            enc.put_u8(1);
            enc.put_u32(record.id);
            enc.put_u64(record.size);
            enc.put_str(&record.table);
            enc.put_str(&record.column);
            enc.put_u64_slice(signature.slots());
        }
        DeltaOp::Remove { id } => {
            enc.put_u8(2);
            enc.put_u32(*id);
        }
        DeltaOp::Commit { next_id } => {
            enc.put_u8(3);
            enc.put_u32(*next_id);
        }
    }
    enc.finish()
}

fn decode_op(payload: &[u8]) -> Result<DeltaOp, CodecError> {
    let mut dec = Decoder::new(payload);
    let op = match dec.get_u8("delta op tag")? {
        1 => DeltaOp::Insert {
            record: DomainRecord {
                id: dec.get_u32("delta id")?,
                size: dec.get_u64("delta size")?,
                table: dec.get_str("delta table")?,
                column: dec.get_str("delta column")?,
            },
            signature: Signature::from_slots(dec.get_u64_vec("delta signature")?),
        },
        2 => DeltaOp::Remove {
            id: dec.get_u32("delta id")?,
        },
        3 => DeltaOp::Commit {
            next_id: dec.get_u32("delta next id")?,
        },
        _ => return Err(CodecError::Corrupt("unknown delta op tag")),
    };
    if !dec.is_exhausted() {
        return Err(CodecError::Corrupt("trailing bytes after delta op"));
    }
    Ok(op)
}

/// The append-only mutation log kept next to a served `.lshe` file
/// (`<index>.delta`): every staged `/insert` and `/remove` is appended
/// before it is acknowledged, and replayed on the next load, so a server
/// restart loses no staged mutation. [`DeltaOp::Commit`] markers split the
/// log into committed batches (each batch = one sealed segment) followed
/// by a still-staged tail; the log is retired only by compaction, which
/// folds every batch into the base file.
///
/// ```text
/// "LSHD" version:u8 next_id:u32        (v1 headers omit next_id)
/// per entry: len:u32  payload[len]  fnv1a(payload):u64
/// ```
///
/// A crash mid-append leaves a truncated final entry; [`read`](Self::read)
/// reports it as the typed [`DeltaError::Torn`] rather than panicking or
/// silently dropping data.
#[derive(Debug, Clone)]
pub struct DeltaLog {
    path: PathBuf,
}

impl DeltaLog {
    /// The conventional sidecar path for an index file: `<index>.delta`.
    #[must_use]
    pub fn sidecar(index_path: &Path) -> Self {
        let mut os = index_path.as_os_str().to_owned();
        os.push(".delta");
        Self {
            path: PathBuf::from(os),
        }
    }

    /// A delta log at an explicit path.
    #[must_use]
    pub fn at(path: PathBuf) -> Self {
        Self { path }
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True if the log file exists on disk.
    #[must_use]
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Appends one op, creating the file (with its header, which pins the
    /// allocator high-water mark `next_id` at creation time) on first use.
    /// The entry is fsynced (`sync_data`) before returning — the op is on
    /// disk, not just in the page cache, by the time the caller
    /// acknowledges it.
    ///
    /// # Errors
    /// Propagates I/O errors; the op is not recorded on failure.
    pub fn append(&self, op: &DeltaOp, next_id: u32) -> std::io::Result<()> {
        let payload = encode_op(op);
        let mut entry = Encoder::with_capacity(payload.len() + 16);
        entry.put_u32(payload.len() as u32);
        let check = fnv1a(&payload);
        let mut bytes = entry.finish();
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&check.to_le_bytes());
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if file.metadata()?.len() == 0 {
            let mut header = Encoder::with_capacity(9);
            header.envelope(DELTA_MAGIC, DELTA_VERSION);
            header.put_u32(next_id);
            file.write_all(&header.finish())?;
        }
        file.write_all(&bytes)?;
        file.sync_data()
    }

    /// Reads every op in append order. A missing file is an empty log.
    ///
    /// # Errors
    /// As [`read_with_mark`](Self::read_with_mark).
    pub fn read(&self) -> Result<Vec<DeltaOp>, DeltaError> {
        self.read_with_mark().map(|(_, ops)| ops)
    }

    /// Reads the header's allocator high-water mark (0 for v1 logs, which
    /// predate it) plus every op in append order. A missing file is an
    /// empty log with mark 0.
    ///
    /// # Errors
    /// [`DeltaError::Torn`] when the file ends mid-entry (torn write),
    /// [`DeltaError::Corrupt`] on a bad header, checksum, or payload, and
    /// [`DeltaError::Io`] on filesystem failures.
    pub fn read_with_mark(&self) -> Result<(u32, Vec<DeltaOp>), DeltaError> {
        let bytes = match std::fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, Vec::new())),
            Err(e) => return Err(e.into()),
        };
        let mut dec = Decoder::new(&bytes);
        let version = dec
            .envelope(DELTA_MAGIC)
            .map_err(|e| DeltaError::Corrupt(e.to_string()))?;
        if version > DELTA_VERSION {
            return Err(DeltaError::Corrupt(format!(
                "unsupported delta version {version}"
            )));
        }
        // Entries are parsed straight off validated slices past the fixed
        // header: magic + version (5 bytes), plus the v2 allocator mark.
        let mark = if version >= 2 {
            dec.get_u32("next id")
                .map_err(|e| DeltaError::Corrupt(e.to_string()))?
        } else {
            0
        };
        let mut pos = if version >= 2 { 9usize } else { 5usize };
        let mut ops = Vec::new();
        while pos < bytes.len() {
            if bytes.len() - pos < 4 {
                return Err(DeltaError::Torn { entries: ops.len() });
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if bytes.len() - pos < len + 8 {
                return Err(DeltaError::Torn { entries: ops.len() });
            }
            let payload = &bytes[pos..pos + len];
            pos += len;
            let check = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
            pos += 8;
            if check != fnv1a(payload) {
                return Err(DeltaError::Corrupt(format!(
                    "checksum mismatch in entry {}",
                    ops.len()
                )));
            }
            ops.push(decode_op(payload).map_err(|e| DeltaError::Corrupt(e.to_string()))?);
        }
        Ok((mark, ops))
    }

    /// Atomically rewrites the log to hold exactly `ops` (tmp + rename):
    /// the log-prefix retirement step of a background merge. After a
    /// partial merge persists the base file, every *committed* batch is
    /// embodied in it — only the still-staged tail must survive a crash,
    /// so the committed prefix is dropped here. An empty `ops` removes
    /// the file (the steady state of a fully-persisted index).
    ///
    /// # Errors
    /// Propagates I/O errors; the previous log survives intact on failure
    /// (a stale prefix merely replays as a no-op).
    pub fn rewrite(&self, ops: &[DeltaOp], next_id: u32) -> std::io::Result<()> {
        if ops.is_empty() {
            return self.clear();
        }
        let mut bytes = {
            let mut header = Encoder::with_capacity(9);
            header.envelope(DELTA_MAGIC, DELTA_VERSION);
            header.put_u32(next_id);
            header.finish()
        };
        for op in ops {
            let payload = encode_op(op);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            let check = fnv1a(&payload);
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&check.to_le_bytes());
        }
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)
    }

    /// Deletes the log (after its ops were committed into the base file).
    ///
    /// # Errors
    /// Propagates I/O errors; a missing file is fine.
    pub fn clear(&self) -> std::io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_corpus::{Domain, DomainMeta};

    fn catalog(n: usize) -> Catalog {
        let mut c = Catalog::new();
        let pool: Vec<u64> = (0..20 * n as u64).collect();
        for k in 0..n {
            c.push(
                Domain::from_hashes(pool[..20 * (k + 1)].to_vec()),
                DomainMeta::new(format!("t{k}"), "col"),
            );
        }
        c
    }

    #[test]
    fn container_roundtrip_plain() {
        let cat = catalog(10);
        let built = IndexContainer::build(&cat, 2, false);
        let bytes = built.to_bytes();
        let restored = IndexContainer::from_bytes(&bytes).expect("decode");
        assert_eq!(restored.len(), 10);
        assert_eq!(restored.num_perm(), 256);
        assert_eq!(restored.provenance(3), ("t3", "col", 80));
        // Query equivalence.
        let hasher = MinHasher::new(256);
        let q = cat.domain(2).signature(&hasher);
        let a = built.search(&q, 60, 0.8);
        let b = restored.search(&q, 60, 0.8);
        assert_eq!(a, b);
        assert!(a.iter().any(|&(id, _)| id == 2));
    }

    #[test]
    fn container_roundtrip_ranked() {
        let cat = catalog(8);
        let built = IndexContainer::build(&cat, 2, true);
        let bytes = built.to_bytes();
        let restored = IndexContainer::from_bytes(&bytes).expect("decode");
        let hasher = MinHasher::new(256);
        let q = cat.domain(1).signature(&hasher);
        let top = restored.top_k(&q, 40, 3).expect("ranked");
        assert_eq!(top.len(), 3);
        assert!(top[0].1.expect("estimate") > 0.9);
    }

    #[test]
    fn from_stream_matches_batch_build() {
        // The streaming constructor must be value-identical to the batch
        // one: same records, same index, byte-identical serialisation.
        let cat = catalog(12);
        for ranked in [false, true] {
            let batch = IndexContainer::build(&cat, 3, ranked);
            let streamed = IndexContainer::from_stream(
                cat.iter().map(|(id, d)| {
                    let meta = cat.meta(id);
                    (d.clone(), DomainMeta::new(&meta.table, &meta.column))
                }),
                3,
                ranked,
            );
            assert_eq!(streamed.len(), batch.len());
            assert_eq!(streamed.kind(), batch.kind());
            assert_eq!(streamed.to_bytes(), batch.to_bytes(), "ranked={ranked}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn from_stream_rejects_empty_stream() {
        let _ = IndexContainer::from_stream(std::iter::empty(), 2, true);
    }

    #[test]
    fn plain_container_rejects_top_k() {
        let cat = catalog(5);
        let built = IndexContainer::build(&cat, 2, false);
        let hasher = MinHasher::new(256);
        let q = cat.domain(0).signature(&hasher);
        assert!(built.top_k(&q, 20, 2).is_err());
    }

    #[test]
    fn kind_tag_and_open_index_dispatch() {
        let cat = catalog(10);
        let plain = IndexContainer::build(&cat, 2, false);
        let ranked = IndexContainer::build(&cat, 2, true);
        assert_eq!(plain.kind(), IndexKind::Plain);
        assert_eq!(ranked.kind(), IndexKind::Ranked);

        let hasher = MinHasher::new(256);
        let sig = cat.domain(2).signature(&hasher);
        for c in [&plain, &ranked] {
            let idx = c.open_index();
            assert_eq!(idx.len(), 10);
            assert!(idx.memory_bytes() > 0);
            let out = idx
                .search(&Query::threshold(&sig, 0.8).with_size(60))
                .expect("search");
            assert!(out.ids().contains(&2));
            assert!(out.stats.partitions_probed <= out.stats.partitions_total);
        }
        // open_index shares (not clones) the stored index.
        assert!(matches!(
            plain
                .open_index()
                .search(&Query::top_k(&sig, 2).with_size(60)),
            Err(lshe_core::QueryError::Unsupported(_))
        ));

        // Sharded opening: refused without sketches, works with them.
        assert!(plain.open_index_sharded(2).is_err());
        assert!(ranked.open_index_sharded(100).is_err(), "too few domains");
        let sharded = ranked.open_index_sharded(2).expect("sharded");
        let out = sharded
            .search(&Query::threshold(&sig, 0.8).with_size(60))
            .expect("search");
        assert!(out.ids().contains(&2));
        assert!(out.hits.iter().all(|h| h.estimate.is_some()));
    }

    #[test]
    fn truncation_rejected() {
        let cat = catalog(5);
        let bytes = IndexContainer::build(&cat, 2, true).to_bytes();
        for cut in [0usize, 4, 9, bytes.len() / 3, bytes.len() - 1] {
            assert!(IndexContainer::from_bytes(&bytes[..cut]).is_err());
        }
    }

    fn insert_op(id: u32, n_values: usize, num_perm: usize) -> DeltaOp {
        let hasher = MinHasher::new(num_perm);
        let values: Vec<u64> = (9_000..9_000 + n_values as u64).collect();
        DeltaOp::Insert {
            record: DomainRecord {
                id,
                size: n_values as u64,
                table: format!("live{id}"),
                column: "col".to_owned(),
            },
            signature: hasher.signature(values.iter().copied()),
        }
    }

    #[test]
    fn apply_commit_persist_roundtrip() {
        for ranked in [false, true] {
            let cat = catalog(10);
            let mut c = IndexContainer::build(&cat, 2, ranked);
            assert_eq!(c.next_id(), 10);
            let ops = vec![
                insert_op(10, 25, c.num_perm()),
                DeltaOp::Remove { id: 4 },
                insert_op(11, 33, c.num_perm()),
            ];
            assert_eq!(c.apply(&ops).expect("apply"), 3);
            assert_eq!(c.len(), 11);
            assert_eq!(c.staged_len(), 2);
            assert_eq!(c.next_id(), 12);
            assert!(c.record(4).is_none());
            assert_eq!(c.record(10).expect("record").table, "live10");

            // Staged inserts answer queries immediately.
            let hasher = MinHasher::new(c.num_perm());
            let sig = hasher.signature((9_000..9_025).map(|v| v as u64));
            let hits = c.search(&sig, 25, 0.9);
            assert!(hits.iter().any(|&(id, _)| id == 10), "{ranked}: {hits:?}");

            // Commit, persist, reload: everything survives.
            let report = c.commit_mutations();
            assert_eq!(report.merged, 2);
            assert_eq!(c.staged_len(), 0);
            let restored = IndexContainer::from_bytes(&c.to_bytes()).expect("decode");
            assert_eq!(restored.len(), 11);
            assert!(restored.record(4).is_none());
            assert!(restored
                .search(&sig, 25, 0.9)
                .iter()
                .any(|&(id, _)| id == 10));
            assert_eq!(restored.provenance(11).0, "live11");
        }
    }

    #[test]
    fn apply_rejects_bad_ops_with_typed_errors() {
        let cat = catalog(6);
        let mut c = IndexContainer::build(&cat, 2, true);
        // Duplicate id.
        assert!(matches!(
            c.apply(&[insert_op(3, 20, c.num_perm())]),
            Err(lshe_core::MutationError::DuplicateId(3))
        ));
        // Unknown removal.
        assert!(matches!(
            c.apply(&[DeltaOp::Remove { id: 99 }]),
            Err(lshe_core::MutationError::UnknownId(99))
        ));
        // Double remove: first applies, second fails typed.
        let err = c
            .apply(&[DeltaOp::Remove { id: 2 }, DeltaOp::Remove { id: 2 }])
            .unwrap_err();
        assert!(matches!(err, lshe_core::MutationError::UnknownId(2)));
        assert_eq!(c.len(), 5, "first remove stays applied");
        // Wrong signature width.
        assert!(matches!(
            c.apply(&[insert_op(40, 20, 64)]),
            Err(lshe_core::MutationError::Invalid(_))
        ));
        // Insert-then-remove before commit cancels out cleanly.
        c.apply(&[insert_op(50, 20, c.num_perm()), DeltaOp::Remove { id: 50 }])
            .expect("insert then remove");
        assert_eq!(c.len(), 5);
        assert!(c.record(50).is_none());
        let _ = c.commit_mutations();
        let restored = IndexContainer::from_bytes(&c.to_bytes()).expect("decode");
        assert_eq!(restored.len(), 5);
    }

    #[test]
    fn container_clone_is_copy_on_write() {
        let cat = catalog(8);
        let original = IndexContainer::build(&cat, 2, true);
        let mut copy = original.clone();
        copy.apply(&[
            DeltaOp::Remove { id: 0 },
            insert_op(20, 30, copy.num_perm()),
        ])
        .expect("apply");
        assert_eq!(copy.len(), 8);
        assert_eq!(original.len(), 8);
        assert!(original.record(0).is_some(), "original lost a record");
        assert!(original.sketch(20).is_none(), "original gained a sketch");
        let hasher = MinHasher::new(original.num_perm());
        let sig = cat.domain(0).signature(&hasher);
        assert!(original
            .search(&sig, cat.domain(0).len() as u64, 1.0)
            .iter()
            .any(|&(id, _)| id == 0));
    }

    #[test]
    fn split_shards_are_bit_identical_to_in_process_shards() {
        let cat = catalog(12);
        let c = IndexContainer::build(&cat, 4, true);
        let n = 3;
        let shards = c.split_with(n, |id, n| id as usize % n).expect("split");
        assert_eq!(shards.len(), n);
        assert_eq!(shards.iter().map(IndexContainer::len).sum::<usize>(), 12);

        // Each split shard's ensemble is byte-for-byte the corresponding
        // in-process shard of open_index_sharded(n): with dense ids the
        // modular placement coincides with the round-robin the sharded
        // build uses.
        let StoredIndex::Ranked(ranked) = &c.index else {
            unreachable!("built ranked");
        };
        let inproc = ShardedRanked::build(Arc::clone(ranked), n, c.shard_config(n));
        for (s, sc) in shards.iter().enumerate() {
            assert!(sc.has_ranked());
            assert_eq!(sc.num_perm(), c.num_perm());
            assert!(sc.records().iter().all(|r| r.id as usize % n == s));
            assert_eq!(
                sc.ensemble().to_bytes_committed(),
                inproc.shards().shards()[s].to_bytes_committed(),
                "shard {s} ensemble drifted from the in-process build"
            );
            // And it survives a disk round-trip intact.
            let restored = IndexContainer::from_bytes(&sc.to_bytes()).expect("decode");
            assert_eq!(restored.len(), sc.len());
            assert_eq!(
                restored.ensemble().to_bytes_committed(),
                sc.ensemble().to_bytes_committed()
            );
        }

        // Union of per-shard answers == the sharded in-process answer,
        // estimates and rank order included.
        let hasher = MinHasher::new(c.num_perm());
        let q = cat.domain(5).signature(&hasher);
        let qsize = cat.domain(5).len() as u64;
        let sharded = c.open_index_sharded(n).expect("sharded");
        let want = sharded
            .search(&Query::threshold(&q, 0.5).with_size(qsize))
            .expect("search")
            .into_pairs();
        let mut got: Vec<(u32, Option<f64>)> = shards
            .iter()
            .flat_map(|sc| sc.search(&q, qsize, 0.5))
            .collect();
        got.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("estimates are not NaN")
                .then(a.0.cmp(&b.0))
        });
        assert_eq!(got, want);
        assert!(got.iter().any(|&(id, _)| id == 5));
    }

    #[test]
    fn split_rejects_bad_inputs() {
        let cat = catalog(6);
        let plain = IndexContainer::build(&cat, 2, false);
        assert!(plain.split_with(2, |id, n| id as usize % n).is_err());
        let ranked = IndexContainer::build(&cat, 2, true);
        assert!(ranked.split_with(1, |id, n| id as usize % n).is_err());
        assert!(ranked.split_with(7, |id, n| id as usize % n).is_err());
        // A placement that starves a shard is refused, not built empty.
        assert!(ranked
            .split_with(2, |_, _| 0)
            .unwrap_err()
            .contains("leaves shard 1 empty"));
        // Out-of-range routing is refused.
        assert!(ranked.split_with(2, |_, n| n).is_err());
    }

    fn scratch_log(name: &str) -> DeltaLog {
        let dir = std::env::temp_dir().join(format!("lshe_delta_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        DeltaLog::sidecar(&dir.join("idx.lshe"))
    }

    #[test]
    fn delta_log_roundtrips_in_order() {
        let log = scratch_log("roundtrip");
        assert!(!log.exists());
        assert_eq!(
            log.read_with_mark().expect("missing file is empty"),
            (0, Vec::new())
        );
        let ops = vec![
            insert_op(7, 12, 256),
            DeltaOp::Remove { id: 3 },
            DeltaOp::Commit { next_id: 9 },
            insert_op(9, 40, 256),
        ];
        for op in &ops {
            log.append(op, 7).expect("append");
        }
        // The header pins the mark at creation; later appends keep it.
        assert_eq!(log.read_with_mark().expect("read"), (7, ops));
        log.clear().expect("clear");
        assert!(!log.exists());
        assert_eq!(log.read().expect("cleared is empty"), Vec::new());
        std::fs::remove_dir_all(log.path().parent().expect("dir")).ok();
    }

    #[test]
    fn v1_delta_log_reads_back_without_a_mark() {
        // A log written by a pre-segment server: 5-byte header, no
        // allocator mark, no commit markers — reads as one staged tail.
        let log = scratch_log("v1compat");
        let ops = vec![insert_op(4, 10, 256), DeltaOp::Remove { id: 2 }];
        let mut bytes = Vec::new();
        let mut header = Encoder::with_capacity(5);
        header.envelope(DELTA_MAGIC, 1);
        bytes.extend_from_slice(&header.finish());
        for op in &ops {
            let payload = encode_op(op);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        }
        std::fs::write(log.path(), &bytes).expect("write");
        assert_eq!(log.read_with_mark().expect("read v1"), (0, ops));
        std::fs::remove_dir_all(log.path().parent().expect("dir")).ok();
    }

    #[test]
    fn torn_delta_log_is_a_typed_error_at_every_cut() {
        let log = scratch_log("torn");
        log.append(&insert_op(1, 10, 256), 2).expect("append");
        log.append(&DeltaOp::Remove { id: 1 }, 2).expect("append");
        let bytes = std::fs::read(log.path()).expect("read");
        // Cut anywhere strictly inside the second entry: one complete
        // entry must be reported, never a panic. The v2 header is 9 bytes
        // (magic + version + allocator mark).
        let first_entry_end = {
            let payload_len = u32::from_le_bytes(bytes[9..13].try_into().expect("len")) as usize;
            9 + 4 + payload_len + 8
        };
        for cut in [first_entry_end + 1, first_entry_end + 4, bytes.len() - 1] {
            std::fs::write(log.path(), &bytes[..cut]).expect("truncate");
            match log.read() {
                Err(DeltaError::Torn { entries }) => assert_eq!(entries, 1, "cut {cut}"),
                other => panic!("cut {cut}: expected Torn, got {other:?}"),
            }
        }
        // A flipped payload byte is a checksum error, not a panic.
        let mut flipped = bytes.clone();
        flipped[14] ^= 0xFF;
        std::fs::write(log.path(), &flipped).expect("write");
        assert!(matches!(log.read(), Err(DeltaError::Corrupt(_))));
        // Garbage header.
        std::fs::write(log.path(), b"garbage").expect("write");
        assert!(matches!(log.read(), Err(DeltaError::Corrupt(_))));
        std::fs::remove_dir_all(log.path().parent().expect("dir")).ok();
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lshe_pack_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn pack_v2_roundtrips_through_mmap() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("idx.lshepk");
        let cat = catalog(12);
        let ranked = IndexContainer::build(&cat, 3, true);
        ranked.pack_v2(&path).expect("pack");

        let mapped = IndexContainer::load(&path).expect("load packed");
        assert_eq!(mapped.kind(), IndexKind::Mapped);
        assert!(mapped.has_ranked());
        assert_eq!(mapped.len(), ranked.len());
        assert_eq!(mapped.num_perm(), ranked.num_perm());
        assert_eq!(mapped.records(), ranked.records());
        assert_eq!(mapped.partition_count(), ranked.partition_count());
        assert_eq!(mapped.staged_len(), 0);

        // Every query answers identically to the heap-served original.
        let hasher = MinHasher::new(256);
        for probe in 0..cat.len() as u32 {
            let sig = cat.domain(probe).signature(&hasher);
            let q = 20 * (u64::from(probe) + 1);
            assert_eq!(
                mapped.search(&sig, q, 0.7),
                ranked.search(&sig, q, 0.7),
                "probe {probe}"
            );
            assert_eq!(
                mapped.top_k(&sig, q, 3).expect("top-k"),
                ranked.top_k(&sig, q, 3).expect("top-k"),
                "probe {probe}"
            );
        }
        // Stats surface works without a heap ensemble.
        assert!(mapped.describe().contains("domains"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_v2_guards_plain_staged_and_mapped() {
        let dir = scratch_dir("guards");
        let path = dir.join("idx.lshepk");
        let cat = catalog(6);

        let plain = IndexContainer::build(&cat, 2, false);
        assert!(plain.pack_v2(&path).unwrap_err().contains("--ranked"));

        let mut staged = IndexContainer::build(&cat, 2, true);
        staged.apply(&[insert_op(99, 15, 256)]).expect("stage");
        assert!(staged.pack_v2(&path).unwrap_err().contains("commit staged"));
        staged.commit_mutations();
        staged.pack_v2(&path).expect("pack after commit");

        let mapped = IndexContainer::load(&path).expect("load");
        assert!(mapped.pack_v2(&path).unwrap_err().contains("already"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_container_is_read_only() {
        let dir = scratch_dir("readonly");
        let path = dir.join("idx.lshepk");
        let cat = catalog(8);
        IndexContainer::build(&cat, 2, true)
            .pack_v2(&path)
            .expect("pack");
        let mut mapped = IndexContainer::load(&path).expect("load");

        // Mutations are a typed refusal, never a silent no-op.
        let err = mapped.apply(&[insert_op(50, 10, 256)]).unwrap_err();
        assert!(err.to_string().contains("read-only"), "got {err}");
        // An empty batch is harmless either way.
        assert_eq!(mapped.apply(&[]).expect("empty batch"), 0);
        assert_eq!(mapped.commit_mutations().merged, 0);

        // In-process sharding and splitting point at the v1 workflow.
        assert!(mapped
            .open_index_sharded(2)
            .unwrap_err()
            .contains("cluster"));
        assert!(mapped.split_with(2, |id, n| id as usize % n).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_errors_name_path_and_section() {
        let dir = scratch_dir("loaderr");

        // Missing file: an I/O error carrying the path.
        let missing = dir.join("absent.lshe");
        let err = IndexContainer::load(&missing).unwrap_err();
        assert!(matches!(err, LoadError::Io { .. }));
        assert_eq!(err.path(), missing.as_path());
        assert!(err.to_string().contains("absent.lshe"));

        // Truncated v1 container: the failing section is named.
        let cat = catalog(5);
        let bytes = IndexContainer::build(&cat, 2, true).to_bytes();
        let cut = dir.join("cut.lshe");
        std::fs::write(&cut, &bytes[..bytes.len() - 1]).expect("write");
        let err = IndexContainer::load(&cut).unwrap_err();
        match &err {
            // The last bytes of a v2 container are the allocator-mark
            // trailer, so a one-byte truncation fails there.
            LoadError::Decode { section, .. } => assert_eq!(*section, "allocator mark"),
            other => panic!("expected Decode, got {other:?}"),
        }
        assert!(err.to_string().contains("cut.lshe"), "got {err}");
        assert!(
            err.to_string().contains("allocator mark section"),
            "got {err}"
        );

        // Garbage magic decodes as v1 and fails in the header.
        let junk = dir.join("junk.lshe");
        std::fs::write(&junk, b"not an index at all").expect("write");
        match IndexContainer::load(&junk).unwrap_err() {
            LoadError::Decode { section, .. } => assert_eq!(section, "header"),
            other => panic!("expected Decode, got {other:?}"),
        }

        // A flipped byte in a packed v2 section is a checksum error
        // that names the damaged section.
        let packed = dir.join("idx.lshepk");
        IndexContainer::build(&cat, 2, true)
            .pack_v2(&packed)
            .expect("pack");
        let mut v2 = std::fs::read(&packed).expect("read");
        let last = v2.len() - 1;
        v2[last] ^= 0x01;
        std::fs::write(&packed, &v2).expect("write");
        let err = IndexContainer::load(&packed).unwrap_err();
        assert!(matches!(err, LoadError::Store { .. }), "got {err:?}");
        assert!(err.to_string().contains("idx.lshepk"), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
