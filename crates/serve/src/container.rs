//! The `.lshe` index-file container: ensemble + provenance + optional
//! ranked sketches, in one self-describing file.
//!
//! ```text
//! "LSHX" version:u8
//! flags:u8                      (bit 0: ranked sketches present)
//! num_perm:u32
//! meta_count:u64
//! per domain: id:u32 size:u64 table:str column:str
//! ensemble: u64 length + LshEnsemble bytes
//! if ranked: per domain (same order): signature slots u64 array
//! ```

use lshe_core::{
    DomainIndex, EnsembleConfig, LshEnsemble, PartitionStrategy, Query, RankedIndex, ShardedRanked,
};
use lshe_corpus::Catalog;
use lshe_minhash::codec::{CodecError, Decoder, Encoder};
use lshe_minhash::{MinHasher, Signature};
use std::fmt::Write as _;
use std::sync::Arc;

/// Envelope tag for `.lshe` files.
pub const MAGIC: [u8; 4] = *b"LSHX";
/// Current container version.
pub const VERSION: u8 = 1;

/// Provenance of one indexed domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRecord {
    /// Dense id (matches the ensemble's ids).
    pub id: u32,
    /// Distinct-value count.
    pub size: u64,
    /// Source table (CSV file stem).
    pub table: String,
    /// Source column.
    pub column: String,
}

/// What kind of index a container stores — the tag
/// [`open_index`](IndexContainer::open_index) dispatches on, so no caller
/// ever matches on a concrete index type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Ensemble only: threshold search, no estimates, no top-k.
    Plain,
    /// Ensemble plus per-domain sketches: estimates, top-k, and sharded
    /// serving are available.
    Ranked,
}

/// The stored index, shared behind `Arc`s so
/// [`open_index`](IndexContainer::open_index) can hand out trait objects
/// without cloning forests or sketches.
#[derive(Debug)]
enum StoredIndex {
    Plain(Arc<LshEnsemble>),
    Ranked(Arc<RankedIndex>),
}

/// A loaded (or freshly built) index file.
#[derive(Debug)]
pub struct IndexContainer {
    records: Vec<DomainRecord>,
    index: StoredIndex,
    num_perm: usize,
}

impl IndexContainer {
    /// Builds a container from a catalog: sketches every domain, builds the
    /// ensemble (retaining ranked sketches when `ranked`), and records
    /// provenance.
    ///
    /// # Panics
    /// Panics if the catalog is empty or `partitions == 0`.
    #[must_use]
    pub fn build(catalog: &Catalog, partitions: usize, ranked: bool) -> Self {
        assert!(!catalog.is_empty(), "catalog must not be empty");
        assert!(partitions > 0, "partitions must be positive");
        let hasher = MinHasher::new(lshe_minhash::DEFAULT_NUM_PERM);
        let config = EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: partitions },
            ..EnsembleConfig::default()
        };
        let mut records = Vec::with_capacity(catalog.len());
        let mut plain_builder = (!ranked).then(|| LshEnsemble::builder_with(config));
        let mut ranked_builder = ranked.then(|| RankedIndex::builder_with(config));
        for (id, domain) in catalog.iter() {
            let meta = catalog.meta(id);
            let sig = domain.signature(&hasher);
            records.push(DomainRecord {
                id,
                size: domain.len() as u64,
                table: meta.table.clone(),
                column: meta.column.clone(),
            });
            if let Some(rb) = ranked_builder.as_mut() {
                rb.add(id, domain.len() as u64, sig);
            } else if let Some(b) = plain_builder.as_mut() {
                b.add(id, domain.len() as u64, sig);
            }
        }
        let index = match ranked_builder {
            Some(rb) => StoredIndex::Ranked(Arc::new(rb.build())),
            None => StoredIndex::Plain(Arc::new(
                plain_builder.expect("plain builder present").build(),
            )),
        };
        Self {
            records,
            index,
            num_perm: hasher.num_perm(),
        }
    }

    /// Signature width the index was built with (clients must sketch
    /// queries at this width).
    #[must_use]
    pub fn num_perm(&self) -> usize {
        self.num_perm
    }

    /// Number of indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the container holds no domains (cannot occur via `build`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The shared ensemble (either standalone or inside the ranked index).
    fn ensemble(&self) -> &LshEnsemble {
        match &self.index {
            StoredIndex::Plain(e) => e,
            StoredIndex::Ranked(r) => r.ensemble(),
        }
    }

    /// The kind of index this container stores.
    #[must_use]
    pub fn kind(&self) -> IndexKind {
        match &self.index {
            StoredIndex::Plain(_) => IndexKind::Plain,
            StoredIndex::Ranked(_) => IndexKind::Ranked,
        }
    }

    /// Opens the stored index behind the unified query surface. Cheap
    /// (clones an `Arc`): the returned handle shares the container's
    /// forests and sketches.
    #[must_use]
    pub fn open_index(&self) -> Box<dyn DomainIndex> {
        match &self.index {
            StoredIndex::Plain(e) => Box::new(Arc::clone(e)),
            StoredIndex::Ranked(r) => Box::new(Arc::clone(r)),
        }
    }

    /// Opens the stored index fanned out across `shards` query shards
    /// (the paper's §6.3 topology). `shards <= 1` is the plain
    /// [`open_index`](Self::open_index).
    ///
    /// # Errors
    /// A message when the container stores no sketches (sharded serving
    /// re-sharpens per-shard partitions from them) or holds fewer domains
    /// than shards.
    pub fn open_index_sharded(&self, shards: usize) -> Result<Box<dyn DomainIndex>, String> {
        if shards <= 1 {
            return Ok(self.open_index());
        }
        let StoredIndex::Ranked(ranked) = &self.index else {
            return Err(
                "--shards needs per-domain sketches; rebuild the index with --ranked".into(),
            );
        };
        if self.len() < shards {
            return Err(format!(
                "cannot split {} domains across {shards} shards",
                self.len()
            ));
        }
        let config = EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth {
                n: self.partition_count().div_ceil(shards).max(1),
            },
            ..EnsembleConfig::default()
        };
        Ok(Box::new(ShardedRanked::build(
            Arc::clone(ranked),
            shards,
            config,
        )))
    }

    /// Number of size partitions in the ensemble.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.ensemble().partition_stats().len()
    }

    /// Provenance records for every indexed domain, in build order.
    #[must_use]
    pub fn records(&self) -> &[DomainRecord] {
        &self.records
    }

    /// Looks up one provenance record by domain id. Records are stored in
    /// ascending-id build order, so this is a binary search with a linear
    /// fallback for containers whose ids arrived unsorted.
    #[must_use]
    pub fn record(&self, id: u32) -> Option<&DomainRecord> {
        match self.records.binary_search_by_key(&id, |r| r.id) {
            Ok(i) => Some(&self.records[i]),
            Err(_) => self.records.iter().find(|r| r.id == id),
        }
    }

    /// True when the container stores per-domain ranked sketches (built
    /// with `--ranked`), enabling [`Self::top_k`], containment estimates,
    /// and sharded serving.
    #[must_use]
    pub fn has_ranked(&self) -> bool {
        self.kind() == IndexKind::Ranked
    }

    /// The stored (size, sketch) for a domain, when ranked sketches are
    /// present.
    #[must_use]
    pub fn sketch(&self, id: u32) -> Option<(u64, &Signature)> {
        match &self.index {
            StoredIndex::Ranked(r) => r.sketch(id),
            StoredIndex::Plain(_) => None,
        }
    }

    /// Provenance lookup: (table, column, size).
    ///
    /// # Panics
    /// Panics if `id` was never indexed.
    #[must_use]
    pub fn provenance(&self, id: u32) -> (&str, &str, u64) {
        let rec = self.record(id).expect("id was indexed");
        (&rec.table, &rec.column, rec.size)
    }

    /// Threshold search; estimates are attached when sketches are stored.
    /// Thin wrapper over the [`DomainIndex`] surface.
    ///
    /// # Panics
    /// Panics on malformed query inputs (width mismatch, zero size,
    /// out-of-range threshold) — use [`open_index`](Self::open_index) for
    /// typed errors.
    #[must_use]
    pub fn search(&self, sig: &Signature, q: u64, t_star: f64) -> Vec<(u32, Option<f64>)> {
        let query = Query::threshold(sig, t_star).with_size(q);
        self.open_index()
            .search(&query)
            .expect("valid threshold query")
            .into_pairs()
    }

    /// Top-k search (requires ranked sketches). Thin wrapper over the
    /// [`DomainIndex`] surface.
    ///
    /// # Errors
    /// Returns a message when the container was built without `--ranked`.
    pub fn top_k(
        &self,
        sig: &Signature,
        q: u64,
        k: usize,
    ) -> Result<Vec<(u32, Option<f64>)>, String> {
        let query = Query::top_k(sig, k).with_size(q);
        self.open_index()
            .search(&query)
            .map(lshe_core::SearchOutcome::into_pairs)
            .map_err(|e| e.to_string())
    }

    /// Human-readable description (the `stats` subcommand). The index
    /// summary line and memory figure come from the [`DomainIndex`]
    /// surface, so every backend reports through the same channel.
    #[must_use]
    pub fn describe(&self) -> String {
        let index = self.open_index();
        let mut out = String::new();
        let config = self.ensemble().config();
        let _ = writeln!(out, "index: {}", index.describe());
        let _ = writeln!(out, "domains: {}", self.len());
        let _ = writeln!(out, "num_perm: {}", config.num_perm);
        let _ = writeln!(
            out,
            "forest: {} trees × depth {}",
            config.b_max, config.r_max
        );
        let _ = writeln!(
            out,
            "ranked sketches: {}",
            if self.has_ranked() { "yes" } else { "no" }
        );
        let _ = writeln!(out, "memory: {} bytes", index.memory_bytes());
        let stats = self.ensemble().partition_stats();
        let _ = writeln!(out, "partitions: {}", stats.len());
        let _ = writeln!(out, "  #\tsize_range\tdomains");
        for (i, p) in stats.iter().enumerate() {
            let _ = writeln!(out, "  {i}\t[{}, {}]\t{}", p.lower, p.upper, p.count);
        }
        out
    }

    /// Serialises the container.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(64 + self.records.len() * 48);
        enc.envelope(MAGIC, VERSION);
        enc.put_u8(u8::from(self.has_ranked()));
        enc.put_u32(self.num_perm as u32);
        enc.put_u64(self.records.len() as u64);
        for rec in &self.records {
            enc.put_u32(rec.id);
            enc.put_u64(rec.size);
            enc.put_str(&rec.table);
            enc.put_str(&rec.column);
        }
        let eb = self.ensemble().to_bytes_committed();
        enc.put_u64(eb.len() as u64);
        for b in eb {
            enc.put_u8(b);
        }
        if let StoredIndex::Ranked(ranked) = &self.index {
            for rec in &self.records {
                let (_, sig) = ranked
                    .sketch(rec.id)
                    .expect("ranked index holds every record");
                enc.put_u64_slice(sig.slots());
            }
        }
        enc.finish()
    }

    /// Deserialises a container.
    ///
    /// # Errors
    /// [`CodecError`] on truncation, tag/version mismatch, or structural
    /// inconsistencies.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes);
        let version = dec.envelope(MAGIC)?;
        if version > VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let has_ranked = dec.get_u8("flags")? != 0;
        let num_perm = dec.get_u32("num_perm")? as usize;
        let count = dec.get_u64("meta count")? as usize;
        let mut records = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            records.push(DomainRecord {
                id: dec.get_u32("record id")?,
                size: dec.get_u64("record size")?,
                table: dec.get_str("record table")?,
                column: dec.get_str("record column")?,
            });
        }
        let eb_len = dec.get_u64("ensemble length")? as usize;
        if eb_len > dec.remaining() {
            return Err(CodecError::Corrupt("ensemble payload exceeds input"));
        }
        let mut eb = Vec::with_capacity(eb_len);
        for _ in 0..eb_len {
            eb.push(dec.get_u8("ensemble bytes")?);
        }
        let ensemble = LshEnsemble::from_bytes(&eb)?;
        if ensemble.len() != records.len() {
            return Err(CodecError::Corrupt("record count disagrees with ensemble"));
        }
        let index = if has_ranked {
            // Reattach the sketches to the already-decoded ensemble
            // instead of rebuilding every partition forest from scratch.
            let mut sketches = Vec::with_capacity(records.len());
            for rec in &records {
                let slots = dec.get_u64_vec("sketch slots")?;
                if slots.len() != num_perm {
                    return Err(CodecError::Corrupt("sketch width disagrees with config"));
                }
                if rec.size == 0 {
                    return Err(CodecError::Corrupt("zero-size record in ranked container"));
                }
                sketches.push((rec.id, rec.size, Signature::from_slots(slots)));
            }
            let mut seen: Vec<u32> = sketches.iter().map(|&(id, _, _)| id).collect();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(CodecError::Corrupt("duplicate id in ranked container"));
            }
            StoredIndex::Ranked(Arc::new(RankedIndex::from_ensemble(ensemble, sketches)))
        } else {
            StoredIndex::Plain(Arc::new(ensemble))
        };
        if !dec.is_exhausted() {
            return Err(CodecError::Corrupt("trailing bytes after container"));
        }
        Ok(Self {
            records,
            index,
            num_perm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_corpus::{Domain, DomainMeta};

    fn catalog(n: usize) -> Catalog {
        let mut c = Catalog::new();
        let pool: Vec<u64> = (0..20 * n as u64).collect();
        for k in 0..n {
            c.push(
                Domain::from_hashes(pool[..20 * (k + 1)].to_vec()),
                DomainMeta::new(format!("t{k}"), "col"),
            );
        }
        c
    }

    #[test]
    fn container_roundtrip_plain() {
        let cat = catalog(10);
        let built = IndexContainer::build(&cat, 2, false);
        let bytes = built.to_bytes();
        let restored = IndexContainer::from_bytes(&bytes).expect("decode");
        assert_eq!(restored.len(), 10);
        assert_eq!(restored.num_perm(), 256);
        assert_eq!(restored.provenance(3), ("t3", "col", 80));
        // Query equivalence.
        let hasher = MinHasher::new(256);
        let q = cat.domain(2).signature(&hasher);
        let a = built.search(&q, 60, 0.8);
        let b = restored.search(&q, 60, 0.8);
        assert_eq!(a, b);
        assert!(a.iter().any(|&(id, _)| id == 2));
    }

    #[test]
    fn container_roundtrip_ranked() {
        let cat = catalog(8);
        let built = IndexContainer::build(&cat, 2, true);
        let bytes = built.to_bytes();
        let restored = IndexContainer::from_bytes(&bytes).expect("decode");
        let hasher = MinHasher::new(256);
        let q = cat.domain(1).signature(&hasher);
        let top = restored.top_k(&q, 40, 3).expect("ranked");
        assert_eq!(top.len(), 3);
        assert!(top[0].1.expect("estimate") > 0.9);
    }

    #[test]
    fn plain_container_rejects_top_k() {
        let cat = catalog(5);
        let built = IndexContainer::build(&cat, 2, false);
        let hasher = MinHasher::new(256);
        let q = cat.domain(0).signature(&hasher);
        assert!(built.top_k(&q, 20, 2).is_err());
    }

    #[test]
    fn kind_tag_and_open_index_dispatch() {
        let cat = catalog(10);
        let plain = IndexContainer::build(&cat, 2, false);
        let ranked = IndexContainer::build(&cat, 2, true);
        assert_eq!(plain.kind(), IndexKind::Plain);
        assert_eq!(ranked.kind(), IndexKind::Ranked);

        let hasher = MinHasher::new(256);
        let sig = cat.domain(2).signature(&hasher);
        for c in [&plain, &ranked] {
            let idx = c.open_index();
            assert_eq!(idx.len(), 10);
            assert!(idx.memory_bytes() > 0);
            let out = idx
                .search(&Query::threshold(&sig, 0.8).with_size(60))
                .expect("search");
            assert!(out.ids().contains(&2));
            assert!(out.stats.partitions_probed <= out.stats.partitions_total);
        }
        // open_index shares (not clones) the stored index.
        assert!(matches!(
            plain
                .open_index()
                .search(&Query::top_k(&sig, 2).with_size(60)),
            Err(lshe_core::QueryError::Unsupported(_))
        ));

        // Sharded opening: refused without sketches, works with them.
        assert!(plain.open_index_sharded(2).is_err());
        assert!(ranked.open_index_sharded(100).is_err(), "too few domains");
        let sharded = ranked.open_index_sharded(2).expect("sharded");
        let out = sharded
            .search(&Query::threshold(&sig, 0.8).with_size(60))
            .expect("search");
        assert!(out.ids().contains(&2));
        assert!(out.hits.iter().all(|h| h.estimate.is_some()));
    }

    #[test]
    fn truncation_rejected() {
        let cat = catalog(5);
        let bytes = IndexContainer::build(&cat, 2, true).to_bytes();
        for cut in [0usize, 4, 9, bytes.len() / 3, bytes.len() - 1] {
            assert!(IndexContainer::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
