//! A fixed-size thread pool for connection handling.
//!
//! `std`-only: a shared `mpsc` channel guarded by a mutex feeds worker
//! threads; dropping the pool closes the channel, and every worker drains
//! outstanding jobs before exiting, which is exactly the graceful-shutdown
//! behaviour the server wants (in-flight requests complete, the listener
//! stops accepting new ones).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads consuming a shared job queue.
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` workers named `{name}-{i}`.
    ///
    /// # Panics
    /// Panics if `size == 0` or the OS refuses to spawn a thread.
    #[must_use]
    pub fn new(size: usize, name: &str) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while dequeuing, never while
                        // running the job.
                        let job = match receiver.lock().expect("pool queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => break, // channel closed: shut down
                        };
                        job();
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job. Returns `false` if the pool is already shutting down
    /// (the job is dropped).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        match &self.sender {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

impl Drop for ThreadPool {
    /// Closes the queue and joins every worker; queued and in-flight jobs
    /// finish first.
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                // A job panicked; the worker is gone but shutdown proceeds.
            }
        }
    }
}

/// Picks a worker count: `requested`, or the machine's available
/// parallelism when `requested == 0` (min 2 so one slow connection cannot
/// starve the listener).
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = ThreadPool::new(4, "test");
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            assert!(pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins after draining the queue
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_waits_for_in_flight_jobs() {
        let pool = ThreadPool::new(2, "slow");
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = ThreadPool::new(2, "panicky");
        pool.execute(|| panic!("job blew up"));
        let done = Arc::new(AtomicUsize::new(0));
        // Give the panicking job time to take down its worker, then verify
        // the pool still executes work and shuts down cleanly.
        std::thread::sleep(std::time::Duration::from_millis(20));
        for _ in 0..8 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn effective_threads_floor() {
        assert_eq!(effective_threads(7), 7);
        assert!(effective_threads(0) >= 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ThreadPool::new(0, "zero");
    }
}
