//! The HTTP server: configuration, routing, endpoints, graceful shutdown.
//!
//! Endpoints (see `docs/API.md` for request/response examples):
//!
//! | method | path        | purpose                                         |
//! |--------|-------------|-------------------------------------------------|
//! | GET    | `/health`   | liveness + index summary                        |
//! | GET    | `/stats`    | index, cache, traffic, server, staging stats    |
//! | POST   | `/query`    | one containment query                           |
//! | POST   | `/topk`     | one top-k query (needs a ranked index)          |
//! | POST   | `/batch`    | many queries, answered in one batched dispatch  |
//! | POST   | `/insert`   | stage one new domain (delta-logged)             |
//! | POST   | `/remove`   | stage the removal of a domain by id             |
//! | POST   | `/commit`   | seal staged mutations into a segment (O(delta)) |
//! | POST   | `/compact`  | enqueue a full fold on the maintenance thread (`?async=1` to not wait) |
//! | POST   | `/reload`   | hot-swap the index snapshot                     |
//! | POST   | `/shutdown` | graceful stop (drain in-flight, then exit)      |
//!
//! I/O runs on the readiness-driven reactor (the crate-private
//! `reactor` module): one
//! event-loop thread owns every connection, cache-hit queries and cheap
//! control endpoints answer inline, and everything that must search hands
//! off to a small compute pool. This module owns everything *above* the
//! sockets: the shared state, the route table, and the handlers.

use crate::cache::{signature_digest, CacheStats, LruCache, QueryKey};
use crate::engine::{Engine, EngineError, Snapshot};
use crate::http::{write_head_with, Request};
use crate::json::Json;
use crate::maintenance::{Maintainer, MaintenanceConfig};
use crate::poller::Waker;
use crate::pool::effective_threads;
use lshe_core::{
    CompactionThresholds, MergePolicyKind, Query, QueryStats, SearchHit, SearchOutcome,
};
use lshe_corpus::Domain;
use lshe_minhash::Signature;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default containment threshold when a query omits one (matches the CLI).
const DEFAULT_THRESHOLD: f64 = 0.7;
/// Upper bound on `k`, to bound per-request work.
const MAX_K: usize = 10_000;
/// Upper bound on queries per `/batch` request.
const MAX_BATCH: usize = 4_096;

/// Server construction parameters.
///
/// Construct with struct-update syntax so new knobs keep defaults:
///
/// ```ignore
/// ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() }
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Compute-pool threads (0 = available parallelism).
    pub threads: usize,
    /// LRU query-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Whole-request read deadline in milliseconds: once a request's first
    /// byte arrives, the rest must follow within this window or the
    /// connection is answered `400` and closed (slow-loris bound).
    pub request_timeout_ms: u64,
    /// Maximum simultaneously open connections; excess accepts are closed
    /// immediately (fd-exhaustion bound).
    pub max_connections: usize,
    /// This server's shard number within a cluster, surfaced on `/stats`
    /// so a coordinator (or an operator) can verify each process serves
    /// the split it was assigned. `None` for standalone servers.
    pub shard_id: Option<u64>,
    /// Which merge policy the background maintenance thread schedules:
    /// `Leveled` folds only the overflowing level (O(log corpus) write
    /// amplification), `Tiered` full-folds past the thresholds.
    pub merge_policy: MergePolicyKind,
    /// Sealed-segment count past which maintenance triggers
    /// (`--compact-segments`).
    pub compact_segments: usize,
    /// Tombstone backlog, as a percentage of live entries, past which
    /// maintenance schedules a full fold (`--compact-tombstone-pct`).
    pub compact_tombstone_pct: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let thresholds = CompactionThresholds::default();
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            threads: 0,
            cache_capacity: 1024,
            request_timeout_ms: 10_000,
            max_connections: 10_240,
            shard_id: None,
            merge_policy: MergePolicyKind::default(),
            compact_segments: thresholds.max_segments,
            compact_tombstone_pct: thresholds.max_tombstone_ratio * 100.0,
        }
    }
}

impl ServerConfig {
    /// The maintenance-runtime view of this configuration.
    #[must_use]
    pub fn maintenance(&self) -> MaintenanceConfig {
        MaintenanceConfig {
            policy: self.merge_policy,
            thresholds: CompactionThresholds {
                max_segments: self.compact_segments.max(1),
                max_tombstone_ratio: (self.compact_tombstone_pct / 100.0).max(0.0),
            },
        }
    }
}

/// Per-endpoint traffic counters.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections: AtomicU64,
    pub(crate) queries: AtomicU64,
    pub(crate) topk: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batch_queries: AtomicU64,
    pub(crate) reloads: AtomicU64,
    pub(crate) inserts: AtomicU64,
    pub(crate) removes: AtomicU64,
    pub(crate) commits: AtomicU64,
    pub(crate) compactions: AtomicU64,
    pub(crate) errors: AtomicU64,
}

/// Event-loop observability counters, exposed as the `server` object on
/// `/stats`.
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    /// Connections currently open.
    pub(crate) open: AtomicU64,
    /// Highest number of in-flight pipelined requests seen on any one
    /// connection.
    pub(crate) pipeline_hwm: AtomicU64,
    /// Event-loop wakeups (one per `epoll_wait` return).
    pub(crate) wakeups: AtomicU64,
    /// Largest per-connection write buffer observed, in bytes.
    pub(crate) write_buf_hwm: AtomicU64,
}

/// Aggregated per-query execution counters ([`QueryStats`]) across every
/// search the engine actually executed (cache hits are excluded — their
/// stats were counted when first computed). Exposed on `/stats`.
#[derive(Debug, Default)]
struct QueryStatTotals {
    executed: AtomicU64,
    partitions_probed: AtomicU64,
    candidates: AtomicU64,
    survivors: AtomicU64,
    wall_micros: AtomicU64,
}

impl QueryStatTotals {
    fn record(&self, stats: &QueryStats) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.partitions_probed
            .fetch_add(stats.partitions_probed as u64, Ordering::Relaxed);
        self.candidates
            .fetch_add(stats.candidates as u64, Ordering::Relaxed);
        self.survivors
            .fetch_add(stats.survivors as u64, Ordering::Relaxed);
        self.wall_micros
            .fetch_add(stats.wall_micros, Ordering::Relaxed);
    }
}

/// State shared by the reactor, the compute pool, and every handler.
pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) cache: Arc<LruCache<QueryKey, Arc<SearchOutcome>>>,
    pub(crate) counters: Counters,
    query_totals: QueryStatTotals,
    pub(crate) server_stats: ServerStats,
    started: Instant,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) threads: usize,
    /// Whole-request read deadline (from [`ServerConfig::request_timeout_ms`]).
    pub(crate) request_timeout: Duration,
    /// Open-connection cap (from [`ServerConfig::max_connections`]).
    pub(crate) max_connections: usize,
    /// Shard identity (from [`ServerConfig::shard_id`]), echoed on `/stats`.
    shard_id: Option<u64>,
    /// The background maintenance runtime: one parked thread that executes
    /// merge plans (leveled or tiered) off the request path. Commits wake
    /// it; `/compact` enqueues full-merge epochs on it.
    pub(crate) maintainer: Arc<Maintainer>,
}

/// A running server; dropping the handle shuts it down gracefully.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<std::thread::JoinHandle<()>>,
    /// Test hook: the server's maintenance runtime, so tests can stretch
    /// merge windows deterministically.
    #[cfg(test)]
    pub(crate) maintainer: Arc<Maintainer>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral `:0` bind).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop and waits for it: the listener closes,
    /// idle connections are released, and in-flight requests complete.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server stops on its own (`/shutdown` endpoint or
    /// a reactor failure).
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }

    fn stop(&mut self) {
        if let Some(reactor) = self.reactor.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // The reactor may be blocked in `wait`; the waker's fd is
            // registered there, so one poke gets it to notice the flag.
            self.waker.wake();
            let _ = reactor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `config.addr` and spawns the reactor thread (which owns the
/// listener, every connection, and the compute pool).
///
/// # Errors
/// Propagates the bind / waker-creation / spawn failure.
pub fn start(engine: Arc<Engine>, config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let threads = effective_threads(config.threads);
    let shutdown = Arc::new(AtomicBool::new(false));
    let cache = Arc::new(LruCache::new(config.cache_capacity));
    // The maintainer swaps snapshots from its own thread; its on-swap
    // callback drops the now-unreachable cache generation, exactly as the
    // request-path handlers do after their own swaps.
    let maintainer = Maintainer::spawn(Arc::clone(&engine), config.maintenance(), {
        let cache = Arc::clone(&cache);
        Box::new(move || cache.clear())
    });
    let shared = Arc::new(Shared {
        engine,
        cache,
        counters: Counters::default(),
        query_totals: QueryStatTotals::default(),
        server_stats: ServerStats::default(),
        started: Instant::now(),
        shutdown: Arc::clone(&shutdown),
        threads,
        request_timeout: Duration::from_millis(config.request_timeout_ms.max(1)),
        max_connections: config.max_connections.max(1),
        shard_id: config.shard_id,
        maintainer,
    });
    let waker = Arc::new(Waker::new()?);
    let reactor = {
        let shared = Arc::clone(&shared);
        let waker = Arc::clone(&waker);
        std::thread::Builder::new()
            .name("lshe-serve-reactor".to_owned())
            .spawn(move || {
                crate::reactor::run(listener, &shared, &waker);
                // The reactor has drained: no handler can enqueue more
                // maintenance work, so stop the worker after its current
                // task (clean shutdown even mid-merge).
                shared.maintainer.shutdown();
            })?
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        waker,
        #[cfg(test)]
        maintainer: Arc::clone(&shared.maintainer),
        reactor: Some(reactor),
    })
}

/// One routed response.
pub(crate) struct Outcome {
    pub(crate) status: u16,
    pub(crate) reason: &'static str,
    pub(crate) body: Json,
    pub(crate) close_after: bool,
    /// Emit a `Retry-After: <seconds>` header — how a draining server
    /// tells retry logic "come back later" (vs a hard failure).
    pub(crate) retry_after: Option<u64>,
}

impl Outcome {
    fn ok(body: Json) -> Self {
        Self {
            status: 200,
            reason: "OK",
            body,
            close_after: false,
            retry_after: None,
        }
    }

    pub(crate) fn error(status: u16, reason: &'static str, msg: impl Into<String>) -> Self {
        Self {
            status,
            reason,
            body: Json::obj(vec![("error", Json::str(msg.into()))]),
            close_after: false,
            retry_after: None,
        }
    }

    /// The drain-time refusal: a request arrived after `/shutdown` began
    /// draining. `503` + `Retry-After` lets retry logic (the cluster
    /// coordinator's, most importantly) distinguish "come back later /
    /// elsewhere" from a hard failure.
    pub(crate) fn draining() -> Self {
        Self {
            close_after: true,
            retry_after: Some(1),
            ..Self::error(503, "Service Unavailable", "server is draining")
        }
    }
}

/// Serialises `outcome` to raw HTTP response bytes, rendering the JSON
/// body through `scratch` (reused across calls, so steady-state rendering
/// allocates only the returned vector). Pure: counter bumps happen at the
/// call sites that know whether this response ends a request or a parse.
pub(crate) fn render_outcome(outcome: &Outcome, keep_alive: bool, scratch: &mut String) -> Vec<u8> {
    scratch.clear();
    outcome.body.render_into(scratch);
    let mut bytes = Vec::with_capacity(scratch.len() + 128);
    let retry_after = outcome.retry_after.map(|secs| secs.to_string());
    let extra: &[(&str, &str)] = match &retry_after {
        Some(secs) => &[("retry-after", secs.as_str())],
        None => &[],
    };
    write_head_with(
        &mut bytes,
        outcome.status,
        outcome.reason,
        "application/json",
        scratch.len(),
        keep_alive,
        extra,
    );
    bytes.extend_from_slice(scratch.as_bytes());
    bytes
}

/// Routes one request to its handler. Counter discipline: this function
/// does NOT bump `errors` — the reactor does, exactly once per rendered
/// error response (routed 4xx/5xx, parse failures, and timeouts alike).
pub(crate) fn route(shared: &Shared, request: &Request) -> Outcome {
    match (request.method.as_str(), request.path()) {
        ("GET", "/health") => handle_health(shared),
        ("GET", "/stats") => handle_stats(shared),
        ("POST", "/query") => handle_query(shared, request, false),
        ("POST", "/topk") => handle_query(shared, request, true),
        ("POST", "/batch") => handle_batch(shared, request),
        ("POST", "/reload") => handle_reload(shared, request),
        ("POST", "/insert") => handle_insert(shared, request),
        ("POST", "/remove") => handle_remove(shared, request),
        ("POST", "/commit") => handle_commit(shared),
        ("POST", "/compact") => handle_compact(shared, request),
        ("POST", "/shutdown") => {
            // The flag is stored at route time, so requests pipelined
            // BEHIND /shutdown in the same burst already answer 503 +
            // Retry-After (see the reactor's drain check); the reactor
            // begins the drain on its next loop iteration, after this
            // response is queued. Keep-alive on the wire: a close-flagged
            // response would discard those queued 503s.
            shared.shutdown.store(true, Ordering::SeqCst);
            Outcome::ok(Json::obj(vec![("status", Json::str("shutting down"))]))
        }
        (
            _,
            "/health" | "/stats" | "/query" | "/topk" | "/batch" | "/reload" | "/insert"
            | "/remove" | "/commit" | "/compact" | "/shutdown",
        ) => Outcome::error(405, "Method Not Allowed", "wrong method for this path"),
        (_, path) => Outcome::error(404, "Not Found", format!("no such endpoint: {path}")),
    }
}

fn handle_health(shared: &Shared) -> Outcome {
    let snap = shared.engine.snapshot();
    Outcome::ok(Json::obj(vec![
        ("status", Json::str("ok")),
        ("domains", Json::uint(snap.container().len() as u64)),
        ("generation", Json::uint(snap.generation())),
        ("shards", Json::uint(snap.num_shards() as u64)),
        ("ranked", Json::Bool(snap.container().has_ranked())),
        ("cache_enabled", Json::Bool(shared.cache.capacity() > 0)),
    ]))
}

fn cache_json(stats: &CacheStats) -> Json {
    Json::obj(vec![
        ("capacity", Json::uint(stats.capacity as u64)),
        ("entries", Json::uint(stats.entries as u64)),
        ("hits", Json::uint(stats.hits)),
        ("misses", Json::uint(stats.misses)),
        ("hit_rate", Json::num(stats.hit_rate())),
    ])
}

fn handle_stats(shared: &Shared) -> Outcome {
    let snap = shared.engine.snapshot();
    let staged = shared.engine.staged_counts();
    let segments = snap.container().segment_stats();
    let c = &shared.counters;
    let q = &shared.query_totals;
    let s = &shared.server_stats;
    Outcome::ok(Json::obj(vec![
        ("domains", Json::uint(snap.container().len() as u64)),
        ("num_perm", Json::uint(snap.container().num_perm() as u64)),
        (
            "partitions",
            Json::uint(snap.container().partition_count() as u64),
        ),
        ("shards", Json::uint(snap.num_shards() as u64)),
        // Cluster plumbing: which split this process serves (absent for
        // standalone servers) and the next id an insert would take — the
        // coordinator allocates cluster-wide ids as the max across shards.
        ("shard_id", shared.shard_id.map_or(Json::Null, Json::uint)),
        ("next_id", Json::uint(u64::from(shared.engine.next_id()))),
        ("generation", Json::uint(snap.generation())),
        // Tiered-mutation drift: sealed segments and tombstones awaiting
        // compaction, plus the generation the last in-process compaction
        // created (0 = none since boot). How an operator (or the bench
        // probe) tells "commits are sealing" from "the merger ran".
        ("segments", Json::uint(segments.segments as u64)),
        ("tombstones", Json::uint(segments.tombstones as u64)),
        (
            "last_compaction",
            Json::uint(shared.engine.last_compaction()),
        ),
        // The background maintenance runtime: effective policy knobs, the
        // live level layout, and what the worker has done / is doing.
        ("maintenance", maintenance_json(shared)),
        ("threads", Json::uint(shared.threads as u64)),
        (
            "uptime_ms",
            Json::uint(shared.started.elapsed().as_millis() as u64),
        ),
        (
            "requests",
            Json::obj(vec![
                (
                    "connections",
                    Json::uint(c.connections.load(Ordering::Relaxed)),
                ),
                ("query", Json::uint(c.queries.load(Ordering::Relaxed))),
                ("topk", Json::uint(c.topk.load(Ordering::Relaxed))),
                ("batch", Json::uint(c.batches.load(Ordering::Relaxed))),
                (
                    "batch_queries",
                    Json::uint(c.batch_queries.load(Ordering::Relaxed)),
                ),
                ("reload", Json::uint(c.reloads.load(Ordering::Relaxed))),
                ("insert", Json::uint(c.inserts.load(Ordering::Relaxed))),
                ("remove", Json::uint(c.removes.load(Ordering::Relaxed))),
                ("commit", Json::uint(c.commits.load(Ordering::Relaxed))),
                ("compact", Json::uint(c.compactions.load(Ordering::Relaxed))),
                ("errors", Json::uint(c.errors.load(Ordering::Relaxed))),
            ]),
        ),
        // Event-loop observability: how loaded the single reactor thread
        // actually is (satellite of the readiness-driven rewrite).
        (
            "server",
            Json::obj(vec![
                (
                    "open_connections",
                    Json::uint(s.open.load(Ordering::Relaxed)),
                ),
                (
                    "accepted_total",
                    Json::uint(c.connections.load(Ordering::Relaxed)),
                ),
                (
                    "pipeline_depth_hwm",
                    Json::uint(s.pipeline_hwm.load(Ordering::Relaxed)),
                ),
                (
                    "event_loop_wakeups",
                    Json::uint(s.wakeups.load(Ordering::Relaxed)),
                ),
                (
                    "write_buf_hwm_bytes",
                    Json::uint(s.write_buf_hwm.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "staged",
            Json::obj(vec![
                ("inserts", Json::uint(staged.inserts as u64)),
                ("removes", Json::uint(staged.removes as u64)),
            ]),
        ),
        // Heap accounting must cover the staged backlog too: uncommitted
        // inserts live outside every snapshot index, and a report that
        // only asked the index would under-count under live ingestion.
        (
            "memory",
            Json::obj(vec![
                (
                    "index_bytes",
                    Json::uint(snap.index().memory_bytes() as u64),
                ),
                (
                    "staged_bytes",
                    Json::uint(shared.engine.staged_memory_bytes() as u64),
                ),
            ]),
        ),
        ("cache", cache_json(&shared.cache.stats())),
        (
            "query_stats",
            Json::obj(vec![
                ("executed", Json::uint(q.executed.load(Ordering::Relaxed))),
                (
                    "partitions_probed",
                    Json::uint(q.partitions_probed.load(Ordering::Relaxed)),
                ),
                (
                    "candidates",
                    Json::uint(q.candidates.load(Ordering::Relaxed)),
                ),
                ("survivors", Json::uint(q.survivors.load(Ordering::Relaxed))),
                (
                    "wall_micros",
                    Json::uint(q.wall_micros.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ]))
}

/// Renders `/stats.maintenance`: the effective policy + thresholds, the
/// live segment layout bucketed into leveled geometry, and the worker's
/// lifetime counters.
fn maintenance_json(shared: &Shared) -> Json {
    let m = shared.maintainer.stats();
    Json::obj(vec![
        ("policy", Json::str(m.policy)),
        ("max_segments", Json::uint(m.thresholds.max_segments as u64)),
        (
            "max_tombstone_pct",
            Json::num(m.thresholds.max_tombstone_ratio * 100.0),
        ),
        (
            "levels",
            Json::Arr(
                m.levels
                    .iter()
                    .map(|&(segments, entries)| {
                        Json::obj(vec![
                            ("segments", Json::uint(segments as u64)),
                            ("entries", Json::uint(entries as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("segment_bound", Json::uint(m.segment_bound as u64)),
        ("queued", Json::uint(m.queued as u64)),
        ("running", m.running.map_or(Json::Null, Json::str)),
        ("merges", Json::uint(m.merges)),
        ("full_merges", Json::uint(m.full_merges)),
        ("entries_folded", Json::uint(m.entries_folded)),
        ("last_merge_us", Json::uint(m.last_merge_micros)),
        ("last_error", m.last_error.map_or(Json::Null, Json::str)),
    ])
}

/// One parsed query after sketching: sketch, cardinality, threshold, and
/// optional k. (The `debug` response flag stays on [`ParsedItem`] — it
/// shapes rendering, not execution.)
struct QuerySpec {
    signature: Signature,
    size: u64,
    threshold: f64,
    k: usize,
}

impl QuerySpec {
    /// The typed [`Query`] this spec describes.
    fn query(&self) -> Query<'_> {
        if self.k > 0 {
            Query::top_k(&self.signature, self.k).with_size(self.size)
        } else {
            Query::threshold(&self.signature, self.threshold).with_size(self.size)
        }
    }
}

/// One request object parsed up to (but not including) sketching: the
/// query domain plus its options. Both the single-query and batch paths
/// stop here first — the cache is keyed on the *raw domain* (see
/// [`item_key`]), so a hit never pays for sketching at all; only misses
/// go on to one bulk [`bulk_signatures`](lshe_minhash::MinHasher::bulk_signatures)
/// pass.
pub(crate) struct ParsedItem {
    domain: Domain,
    threshold: f64,
    k: usize,
    debug: bool,
}

impl ParsedItem {
    fn spec(&self, signature: Signature) -> QuerySpec {
        QuerySpec {
            size: self.domain.len() as u64,
            signature,
            threshold: self.threshold,
            k: self.k,
        }
    }
}

/// Parses a request object: `values` (required string array, hashed
/// server-side into the index's hash universe), plus optional
/// `threshold`, `k`, and `debug`. A present `k` always means top-k — on
/// `/query`, `/topk`, and `/batch` entries alike; `require_k` only makes
/// it mandatory (`/topk`).
fn parse_item(body: &Json, require_k: bool) -> Result<ParsedItem, String> {
    let values = body
        .get("values")
        .and_then(Json::as_array)
        .ok_or("missing \"values\": expected an array of strings")?;
    if values.is_empty() {
        return Err("\"values\" must not be empty".to_owned());
    }
    let mut strs = Vec::with_capacity(values.len());
    for v in values {
        strs.push(v.as_str().ok_or("\"values\" entries must all be strings")?);
    }
    let domain = Domain::from_strs(strs.iter().copied());
    let threshold = match body.get("threshold") {
        None => DEFAULT_THRESHOLD,
        Some(t) => t
            .as_f64()
            .filter(|t| (0.0..=1.0).contains(t))
            .ok_or("\"threshold\" must be a number in [0, 1]")?,
    };
    let k = match body.get("k") {
        None if require_k => return Err("missing \"k\": top-k needs a positive integer".to_owned()),
        None => 0,
        Some(k) => k
            .as_u64()
            .filter(|&k| (1..=MAX_K as u64).contains(&k))
            .ok_or_else(|| format!("\"k\" must be an integer in [1, {MAX_K}]"))?
            as usize,
    };
    let debug = match body.get("debug") {
        None => false,
        Some(d) => d.as_bool().ok_or("\"debug\" must be a boolean")?,
    };
    Ok(ParsedItem {
        domain,
        threshold,
        k,
        debug,
    })
}

/// The cache key for a parsed item against one snapshot generation: a
/// digest of the raw (pre-sketch) domain hashes plus the full
/// response-shaping tuple (size, mode, `debug`). Keying on the raw domain
/// instead of the MinHash signature means a cache hit skips sketching
/// entirely — the dominant cost of a repeated query.
fn item_key(item: &ParsedItem, generation: u64) -> QueryKey {
    QueryKey {
        digest: signature_digest(item.domain.hashes()),
        query_size: item.domain.len() as u64,
        // Top-k ignores the threshold entirely; canonicalise it to 0 so
        // identical top-k requests with different (unused) thresholds
        // share one cache entry.
        threshold_bits: if item.k > 0 {
            0
        } else {
            item.threshold.to_bits()
        },
        k: item.k as u32,
        debug: item.debug,
        generation,
    }
}

/// Sketches and searches cache-missed items in ONE batched dispatch:
/// first-occurrence duplicates collapse (later copies alias the first
/// answer, reported `cached` exactly as sequential execution would),
/// unique items sketch in one `bulk_signatures` pass and search in one
/// `search_batch` call, and every executed outcome lands in the cache.
/// Returns, per input item, `Ok((outcome, aliased))` or the per-item
/// error.
#[allow(clippy::type_complexity)]
fn run_uncached(
    shared: &Shared,
    snap: &Snapshot,
    items: &[(&ParsedItem, QueryKey)],
) -> Vec<Result<(Arc<SearchOutcome>, bool), String>> {
    // Collapse duplicates (same key ⇒ same answer) before paying for
    // sketching: `alias_of[i]` points at the unique slot answering item i.
    let mut unique_positions: Vec<usize> = Vec::with_capacity(items.len());
    let mut first_seen: HashMap<QueryKey, usize> = HashMap::with_capacity(items.len());
    let mut alias_of: Vec<usize> = Vec::with_capacity(items.len());
    for (i, (_, key)) in items.iter().enumerate() {
        match first_seen.entry(*key) {
            std::collections::hash_map::Entry::Occupied(e) => alias_of.push(*e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(unique_positions.len());
                alias_of.push(unique_positions.len());
                unique_positions.push(i);
            }
        }
    }
    // Sketch every unique item in one bulk pass (shared hash scratch,
    // worker lanes spawned once), then search them in one batch so the
    // backend amortizes partition/shard probing across the lot.
    let sets: Vec<&[u64]> = unique_positions
        .iter()
        .map(|&i| items[i].0.domain.hashes())
        .collect();
    let signatures = snap.hasher().bulk_signatures(&sets);
    let specs: Vec<QuerySpec> = unique_positions
        .iter()
        .zip(signatures)
        .map(|(&i, sig)| items[i].0.spec(sig))
        .collect();
    let queries: Vec<Query<'_>> = specs.iter().map(QuerySpec::query).collect();
    let outcomes = snap.index().search_batch(&queries);
    let unique_results: Vec<Result<Arc<SearchOutcome>, String>> = unique_positions
        .iter()
        .zip(outcomes)
        .map(|(&i, result)| match result {
            Ok(outcome) => {
                shared.query_totals.record(&outcome.stats);
                let outcome = Arc::new(outcome);
                shared.cache.insert(items[i].1, Arc::clone(&outcome));
                Ok(outcome)
            }
            Err(e) => Err(e.to_string()),
        })
        .collect();
    alias_of
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let aliased = unique_positions[slot] != i;
            match &unique_results[slot] {
                Ok(outcome) => Ok((Arc::clone(outcome), aliased)),
                Err(msg) => Err(msg.clone()),
            }
        })
        .collect()
}

/// Bumps the per-endpoint counter for one answered query.
fn bump_query_counter(shared: &Shared, k: usize) {
    if k > 0 {
        shared.counters.topk.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    }
}

/// Renders one answered query in the `/query`/`/topk` response shape.
fn render_query_outcome(
    snap: &Snapshot,
    item: &ParsedItem,
    outcome: &SearchOutcome,
    cached: bool,
    started: Instant,
) -> Outcome {
    let mut fields = vec![
        ("count", Json::uint(outcome.hits.len() as u64)),
        ("cached", Json::Bool(cached)),
        ("generation", Json::uint(snap.generation())),
        (
            "query_time_us",
            Json::uint(started.elapsed().as_micros() as u64),
        ),
        ("hits", hits_json(snap, &outcome.hits)),
    ];
    if item.debug {
        fields.push(("debug", debug_json(&outcome.stats)));
    }
    Outcome::ok(fields_obj(fields))
}

fn fields_obj(fields: Vec<(&str, Json)>) -> Json {
    Json::obj(fields)
}

/// A `/query`/`/topk` request that missed the cache: everything needed to
/// execute it later (possibly batched with other same-tick misses), off
/// the reactor thread.
pub(crate) struct MissQuery {
    item: ParsedItem,
    key: QueryKey,
    snap: Arc<Snapshot>,
}

/// The first, non-blocking half of a `/query`/`/topk` request: parse, key
/// the cache on the raw domain, and either answer immediately (parse
/// error or cache hit — no sketching, no searching) or hand back the
/// deferred [`MissQuery`].
pub(crate) enum QueryStep {
    /// Answer now (error or cache hit).
    Reply(Outcome),
    /// Cache miss: execute via [`finish_miss`] / [`execute_miss_group`].
    Miss(Box<MissQuery>),
}

/// Runs the cheap half of a single query. Safe on the reactor thread: the
/// worst case is a JSON parse + one cache probe.
pub(crate) fn query_step(
    shared: &Shared,
    body: &[u8],
    require_k: bool,
    started: Instant,
) -> QueryStep {
    let json = match parse_body_bytes(body) {
        Ok(json) => json,
        Err(msg) => return QueryStep::Reply(Outcome::error(400, "Bad Request", msg)),
    };
    let item = match parse_item(&json, require_k) {
        Ok(item) => item,
        Err(msg) => return QueryStep::Reply(Outcome::error(400, "Bad Request", msg)),
    };
    let snap = shared.engine.snapshot();
    let key = item_key(&item, snap.generation());
    if let Some(outcome) = shared.cache.get(&key) {
        bump_query_counter(shared, item.k);
        return QueryStep::Reply(render_query_outcome(&snap, &item, &outcome, true, started));
    }
    QueryStep::Miss(Box::new(MissQuery { item, key, snap }))
}

/// Executes one cache-missed query (the non-batched completion path).
pub(crate) fn finish_miss(shared: &Shared, miss: &MissQuery, started: Instant) -> Outcome {
    let result = run_uncached(shared, &miss.snap, &[(&miss.item, miss.key)])
        .pop()
        .expect("one result per item");
    match result {
        Ok((outcome, _)) => {
            bump_query_counter(shared, miss.item.k);
            render_query_outcome(&miss.snap, &miss.item, &outcome, false, started)
        }
        Err(msg) => Outcome::error(400, "Bad Request", msg),
    }
}

/// Executes a group of same-tick cache misses in as few batched dispatches
/// as possible (one per snapshot generation — normally exactly one), and
/// returns the outcomes in input order. This is how the reactor converts
/// N concurrent single-query requests into one `search_batch` call.
pub(crate) fn execute_miss_group(shared: &Shared, jobs: &[(&MissQuery, Instant)]) -> Vec<Outcome> {
    // Group by generation so every dispatch runs against one snapshot.
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, (miss, _)) in jobs.iter().enumerate() {
        groups.entry(miss.snap.generation()).or_default().push(i);
    }
    let mut out: Vec<Option<Outcome>> = (0..jobs.len()).map(|_| None).collect();
    for positions in groups.into_values() {
        let snap = &jobs[positions[0]].0.snap;
        let items: Vec<(&ParsedItem, QueryKey)> = positions
            .iter()
            .map(|&i| (&jobs[i].0.item, jobs[i].0.key))
            .collect();
        for (&i, result) in positions.iter().zip(run_uncached(shared, snap, &items)) {
            let (miss, started) = &jobs[i];
            out[i] = Some(match result {
                Ok((outcome, aliased)) => {
                    bump_query_counter(shared, miss.item.k);
                    // An alias shares a neighbour's just-executed answer —
                    // reported `cached`, exactly as sequential arrival
                    // order would have produced.
                    render_query_outcome(&miss.snap, &miss.item, &outcome, aliased, *started)
                }
                Err(msg) => Outcome::error(400, "Bad Request", msg),
            });
        }
    }
    out.into_iter()
        .map(|o| o.expect("every job answered"))
        .collect()
}

/// Renders a hit list with provenance.
fn hits_json(snap: &Snapshot, hits: &[SearchHit]) -> Json {
    Json::Arr(
        hits.iter()
            .map(|&SearchHit { id, estimate }| {
                let (table, column, size) = snap
                    .container()
                    .record(id)
                    .map(|r| (r.table.as_str(), r.column.as_str(), r.size))
                    .unwrap_or(("?", "?", 0));
                Json::obj(vec![
                    ("id", Json::uint(u64::from(id))),
                    ("table", Json::str(table)),
                    ("column", Json::str(column)),
                    ("size", Json::uint(size)),
                    ("estimate", estimate.map_or(Json::Null, Json::num)),
                ])
            })
            .collect(),
    )
}

/// Renders one query's [`QueryStats`] (the opt-in `"debug"` field).
fn debug_json(stats: &QueryStats) -> Json {
    Json::obj(vec![
        (
            "partitions_probed",
            Json::uint(stats.partitions_probed as u64),
        ),
        (
            "partitions_total",
            Json::uint(stats.partitions_total as u64),
        ),
        ("candidates", Json::uint(stats.candidates as u64)),
        ("survivors", Json::uint(stats.survivors as u64)),
        ("wall_micros", Json::uint(stats.wall_micros)),
    ])
}

fn parse_body_bytes(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    Json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))
}

fn parse_body(request: &Request) -> Result<Json, String> {
    parse_body_bytes(&request.body)
}

/// `/query` and `/topk` via the generic (blocking) route path: the cheap
/// half inline, then the miss executed immediately. The reactor uses the
/// two halves separately so misses can batch across connections.
fn handle_query(shared: &Shared, request: &Request, require_k: bool) -> Outcome {
    let started = Instant::now();
    match query_step(shared, &request.body, require_k, started) {
        QueryStep::Reply(outcome) => outcome,
        QueryStep::Miss(miss) => finish_miss(shared, &miss, started),
    }
}

fn handle_batch(shared: &Shared, request: &Request) -> Outcome {
    let started = Instant::now();
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let Some(queries) = body.get("queries").and_then(Json::as_array) else {
        return Outcome::error(400, "Bad Request", "missing \"queries\": expected an array");
    };
    if queries.is_empty() {
        return Outcome::error(400, "Bad Request", "\"queries\" must not be empty");
    }
    if queries.len() > MAX_BATCH {
        return Outcome::error(
            400,
            "Bad Request",
            format!("at most {MAX_BATCH} queries per batch"),
        );
    }
    // Every query in the batch runs against ONE snapshot: a concurrent
    // reload cannot split the batch across index generations.
    let snap = shared.engine.snapshot();

    // Phase 1 — parse every item. A malformed item becomes a typed error
    // pinned to its position; it can never fail the batch or shift the
    // answers of its neighbours.
    let parsed: Vec<Result<ParsedItem, String>> =
        queries.iter().map(|q| parse_item(q, false)).collect();

    // Phase 2 — consult the cache per item (keyed on the raw domain, so
    // hits skip sketching). Identical uncached entries within one batch
    // dispatch ONCE: later duplicates borrow the first occurrence's
    // answer (and report `cached`, exactly as they would have under
    // sequential execution). The duplicate check comes FIRST so a
    // duplicate never counts a cache miss it did not cause: its hit is
    // recorded when it reads the freshly inserted entry below.
    let keys: Vec<Option<QueryKey>> = parsed
        .iter()
        .map(|p| {
            p.as_ref()
                .ok()
                .map(|item| item_key(item, snap.generation()))
        })
        .collect();
    let mut slots: Vec<Option<(Arc<SearchOutcome>, bool)>> = vec![None; parsed.len()];
    let mut errors: Vec<Option<String>> =
        parsed.iter().map(|p| p.as_ref().err().cloned()).collect();
    let mut miss_positions: Vec<usize> = Vec::new();
    let mut first_miss: HashMap<QueryKey, usize> = HashMap::new();
    let mut duplicate_of: Vec<Option<usize>> = vec![None; parsed.len()];
    for (i, key) in keys.iter().enumerate() {
        let Some(key) = key else { continue };
        if let Some(&first) = first_miss.get(key) {
            duplicate_of[i] = Some(first);
        } else if let Some(outcome) = shared.cache.get(key) {
            slots[i] = Some((outcome, true));
        } else {
            first_miss.insert(*key, i);
            miss_positions.push(i);
        }
    }

    // Phase 3 — sketch + search every miss in one batched dispatch.
    let miss_items: Vec<(&ParsedItem, QueryKey)> = miss_positions
        .iter()
        .map(|&i| {
            (
                parsed[i].as_ref().expect("miss positions are valid"),
                keys[i].expect("miss positions are keyed"),
            )
        })
        .collect();
    for (&i, result) in miss_positions
        .iter()
        .zip(run_uncached(shared, &snap, &miss_items))
    {
        match result {
            Ok((outcome, _)) => slots[i] = Some((outcome, false)),
            // Per-item query errors (e.g. top-k against an unranked
            // index) stay in position, exactly like parse errors.
            Err(e) => errors[i] = Some(e),
        }
    }
    // Duplicates of a dispatched miss share its answer (or its error),
    // flagged `cached` as they would be under sequential execution. The
    // answer is read back through the cache so the hit counters reflect
    // it (falling back to the first slot's Arc if an eviction already
    // raced it out).
    for (i, first) in duplicate_of.into_iter().enumerate() {
        let Some(first) = first else { continue };
        if let Some((outcome, _)) = &slots[first] {
            let key = keys[i].expect("duplicates parsed");
            let replay = shared
                .cache
                .get(&key)
                .unwrap_or_else(|| Arc::clone(outcome));
            slots[i] = Some((replay, true));
        } else {
            errors[i] = errors[first].clone();
        }
    }

    // Phase 4 — render in request order.
    let rendered: Vec<Json> = slots
        .into_iter()
        .zip(errors)
        .zip(&parsed)
        .map(|((slot, error), item)| match (slot, error) {
            (_, Some(msg)) => Json::obj(vec![("error", Json::str(msg))]),
            (Some((outcome, cached)), None) => {
                let item = item.as_ref().expect("answered items parsed");
                let mut fields = vec![
                    ("count", Json::uint(outcome.hits.len() as u64)),
                    ("cached", Json::Bool(cached)),
                    ("hits", hits_json(&snap, &outcome.hits)),
                ];
                if item.debug {
                    fields.push(("debug", debug_json(&outcome.stats)));
                }
                Json::obj(fields)
            }
            (None, None) => unreachable!("every item is answered or errored"),
        })
        .collect();
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .batch_queries
        .fetch_add(rendered.len() as u64, Ordering::Relaxed);
    Outcome::ok(Json::obj(vec![
        ("count", Json::uint(rendered.len() as u64)),
        ("generation", Json::uint(snap.generation())),
        (
            "batch_time_us",
            Json::uint(started.elapsed().as_micros() as u64),
        ),
        ("results", Json::Arr(rendered)),
    ]))
}

fn handle_reload(shared: &Shared, request: &Request) -> Outcome {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let path = body.get("path").and_then(Json::as_str).map(Path::new);
    match shared.engine.reload(path) {
        Ok(snap) => {
            // Entries are generation-keyed (never stale), but a reload makes
            // the old generation unreachable: drop the dead weight.
            shared.cache.clear();
            shared.counters.reloads.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(Json::obj(vec![
                ("status", Json::str("reloaded")),
                ("generation", Json::uint(snap.generation())),
                ("domains", Json::uint(snap.container().len() as u64)),
                ("shards", Json::uint(snap.num_shards() as u64)),
            ]))
        }
        Err(EngineError::Io(e)) => Outcome::error(400, "Bad Request", format!("i/o error: {e}")),
        Err(e) => Outcome::error(400, "Bad Request", e.to_string()),
    }
}

/// `POST /insert`: stage one domain for live ingestion. The body carries
/// the domain's `values` (hashed server-side, exactly like `/query`) plus
/// optional `table`/`column` provenance. The domain becomes queryable on
/// the next `/commit`; until then `/stats` reports it under `staged`.
fn handle_insert(shared: &Shared, request: &Request) -> Outcome {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let Some(values) = body.get("values").and_then(Json::as_array) else {
        return Outcome::error(
            400,
            "Bad Request",
            "missing \"values\": expected an array of strings",
        );
    };
    if values.is_empty() {
        return Outcome::error(400, "Bad Request", "\"values\" must not be empty");
    }
    let mut strs = Vec::with_capacity(values.len());
    for v in values {
        match v.as_str() {
            Some(s) => strs.push(s),
            None => {
                return Outcome::error(400, "Bad Request", "\"values\" entries must all be strings")
            }
        }
    }
    let table = match body.get("table") {
        None => "ingest".to_owned(),
        Some(t) => match t.as_str() {
            Some(t) => t.to_owned(),
            None => return Outcome::error(400, "Bad Request", "\"table\" must be a string"),
        },
    };
    let column = match body.get("column") {
        None => "col".to_owned(),
        Some(c) => match c.as_str() {
            Some(c) => c.to_owned(),
            None => return Outcome::error(400, "Bad Request", "\"column\" must be a string"),
        },
    };
    // Optional explicit id — the cluster path: the coordinator allocates
    // cluster-wide ids and routes each insert to the shard it places on.
    let explicit_id = match body.get("id") {
        None => None,
        Some(id) => match id.as_u64().and_then(|id| u32::try_from(id).ok()) {
            Some(id) => Some(id),
            None => return Outcome::error(400, "Bad Request", "\"id\" out of range"),
        },
    };
    let domain = Domain::from_strs(strs.iter().copied());
    let snap = shared.engine.snapshot();
    let signature = domain.signature(snap.hasher());
    match shared
        .engine
        .stage_insert_as(table, column, domain.len() as u64, signature, explicit_id)
    {
        Ok((id, staged)) => {
            shared.counters.inserts.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(Json::obj(vec![
                ("status", Json::str("staged")),
                ("id", Json::uint(u64::from(id))),
                ("size", Json::uint(domain.len() as u64)),
                ("staged_inserts", Json::uint(staged.inserts as u64)),
                ("staged_removes", Json::uint(staged.removes as u64)),
            ]))
        }
        Err(EngineError::Io(e)) => {
            Outcome::error(500, "Internal Server Error", format!("delta log: {e}"))
        }
        Err(e) => Outcome::error(400, "Bad Request", e.to_string()),
    }
}

/// `POST /remove`: stage the removal of a domain by id. Takes effect on
/// the next `/commit`; double-removal and unknown ids are 400s.
fn handle_remove(shared: &Shared, request: &Request) -> Outcome {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let Some(id) = body.get("id").and_then(Json::as_u64) else {
        return Outcome::error(400, "Bad Request", "missing \"id\": expected an integer");
    };
    let Ok(id) = u32::try_from(id) else {
        return Outcome::error(400, "Bad Request", "\"id\" out of range");
    };
    match shared.engine.stage_remove(id) {
        Ok(staged) => {
            shared.counters.removes.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(Json::obj(vec![
                ("status", Json::str("staged")),
                ("id", Json::uint(u64::from(id))),
                ("staged_inserts", Json::uint(staged.inserts as u64)),
                ("staged_removes", Json::uint(staged.removes as u64)),
            ]))
        }
        Err(EngineError::Io(e)) => {
            Outcome::error(500, "Internal Server Error", format!("delta log: {e}"))
        }
        Err(e) => Outcome::error(400, "Bad Request", e.to_string()),
    }
}

/// `POST /commit`: seal every staged mutation into one immutable segment
/// as a new snapshot generation (copy-on-write: in-flight queries keep
/// their snapshot). O(staged delta): the base index is untouched — its
/// durability cost is one appended marker in the delta log, never a
/// rewrite. Idempotent when nothing is staged. The sealed stack is never
/// folded here: the commit marker wakes the maintenance thread, which
/// plans and executes merges off the request path.
fn handle_commit(shared: &Shared) -> Outcome {
    match shared.engine.commit_staged() {
        Ok((snap, outcome)) => {
            if outcome.applied > 0 {
                // Entries are generation-keyed (never stale), but the old
                // generation is unreachable now: drop the dead weight.
                shared.cache.clear();
                shared.counters.commits.fetch_add(1, Ordering::Relaxed);
                shared.maintainer.notify_commit();
            }
            Outcome::ok(Json::obj(vec![
                (
                    "status",
                    Json::str(if outcome.applied > 0 {
                        "committed"
                    } else {
                        "nothing staged"
                    }),
                ),
                ("applied", Json::uint(outcome.applied as u64)),
                ("merged", Json::uint(outcome.report.merged as u64)),
                ("rebalanced", Json::Bool(outcome.report.rebalanced)),
                ("sealed", Json::Bool(outcome.report.sealed)),
                ("segments", Json::uint(outcome.report.segments as u64)),
                ("tombstones", Json::uint(outcome.report.tombstones as u64)),
                ("generation", Json::uint(snap.generation())),
                ("domains", Json::uint(snap.container().len() as u64)),
            ]))
        }
        Err(EngineError::Io(e)) => {
            Outcome::error(500, "Internal Server Error", format!("persist: {e}"))
        }
        Err(e) => Outcome::error(400, "Bad Request", e.to_string()),
    }
}

/// `POST /compact`: enqueue a full merge — fold every sealed segment and
/// tombstone into the base index and persist the result — on the
/// maintenance thread, the one remaining O(corpus) step in the mutation
/// path. Anything still staged is applied first, so the compacted base
/// embodies every acknowledged mutation. By default the handler blocks
/// its compute-pool lane until the fold completes (the reactor keeps
/// serving queries throughout); `?async=1` returns immediately with the
/// scheduled epoch, observable via `/stats.maintenance`. Concurrent
/// requests coalesce: one fold satisfies every epoch enqueued before it
/// started. Idempotent when the index is already compacted.
fn handle_compact(shared: &Shared, request: &Request) -> Outcome {
    let wants_async = request.target.split_once('?').is_some_and(|(_, query)| {
        query
            .split('&')
            .any(|kv| kv == "async=1" || kv == "async=true")
    });
    let epoch = shared.maintainer.request_full();
    if wants_async {
        return Outcome::ok(Json::obj(vec![
            ("status", Json::str("scheduled")),
            ("epoch", Json::uint(epoch)),
        ]));
    }
    match shared.maintainer.wait_full(epoch) {
        Ok(summary) => {
            // The maintainer already cleared the cache via its swap hook.
            shared.counters.compactions.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(Json::obj(vec![
                ("status", Json::str("compacted")),
                ("applied", Json::uint(summary.applied as u64)),
                ("merged", Json::uint(summary.merged as u64)),
                ("rebalanced", Json::Bool(summary.rebalanced)),
                ("segments", Json::uint(summary.segments as u64)),
                ("tombstones", Json::uint(summary.tombstones as u64)),
                ("generation", Json::uint(summary.generation)),
                ("domains", Json::uint(summary.domains as u64)),
            ]))
        }
        Err(msg) => Outcome::error(500, "Internal Server Error", msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::container::IndexContainer;
    use lshe_corpus::{Catalog, DomainMeta};
    use std::io::{BufRead, BufReader, Read as _, Write as _};
    use std::net::TcpStream;

    fn test_engine(n: usize, ranked: bool) -> Arc<Engine> {
        let mut cat = Catalog::new();
        for k in 0..n {
            let values: Vec<String> = (0..20 + 5 * k).map(|i| format!("v{i}")).collect();
            cat.push(
                Domain::from_strs(values.iter().map(String::as_str)),
                DomainMeta::new(format!("t{k}"), "col"),
            );
        }
        Arc::new(Engine::from_container(IndexContainer::build(&cat, 2, ranked), 1).expect("engine"))
    }

    fn boot_with(engine: Arc<Engine>, config: ServerConfig) -> ServerHandle {
        start(engine, &config).expect("bind")
    }

    fn boot(engine: Arc<Engine>) -> ServerHandle {
        boot_with(
            engine,
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 2,
                cache_capacity: 16,
                ..ServerConfig::default()
            },
        )
    }

    /// Fresh-connection request helpers over the shared loopback client.
    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        HttpClient::connect(addr).request("GET", path, None)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        HttpClient::connect(addr).request("POST", path, Some(body))
    }

    /// Reads one HTTP response off a raw socket reader; `None` on EOF.
    fn read_resp<R: BufRead>(reader: &mut R) -> Option<(u16, String)> {
        let mut status_line = String::new();
        if reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).ok()?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().ok()?;
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).ok()?;
        Some((status, String::from_utf8(body).ok()?))
    }

    #[test]
    fn health_and_stats_shape() {
        let server = boot(test_engine(6, true));
        let (status, body) = get(server.addr(), "/health");
        assert_eq!(status, 200, "{body}");
        let health = Json::parse(&body).expect("json");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("domains").and_then(Json::as_u64), Some(6));

        let (status, body) = get(server.addr(), "/stats");
        assert_eq!(status, 200);
        let stats = Json::parse(&body).expect("json");
        assert!(stats.get("cache").is_some());
        assert!(stats.get("requests").is_some());
        // The event-loop observability object (new in the reactor core).
        let srv = stats.get("server").expect("server object");
        assert!(srv.get("open_connections").and_then(Json::as_u64).is_some());
        assert!(
            srv.get("accepted_total")
                .and_then(Json::as_u64)
                .expect("accepted")
                >= 1,
            "{srv}"
        );
        assert!(srv
            .get("pipeline_depth_hwm")
            .and_then(Json::as_u64)
            .is_some());
        assert!(
            srv.get("event_loop_wakeups")
                .and_then(Json::as_u64)
                .expect("wakeups")
                >= 1,
            "{srv}"
        );
        assert!(srv
            .get("write_buf_hwm_bytes")
            .and_then(Json::as_u64)
            .is_some());
        server.shutdown();
    }

    #[test]
    fn query_topk_and_cache_flow() {
        let server = boot(test_engine(6, true));
        let q = r#"{"values": ["v0","v1","v2","v3","v4","v5","v6","v7","v8","v9","v10","v11","v12","v13","v14","v15","v16","v17","v18","v19"], "threshold": 0.6}"#;
        let (status, body) = post(server.addr(), "/query", q);
        assert_eq!(status, 200, "{body}");
        let first = Json::parse(&body).expect("json");
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        assert!(first.get("count").and_then(Json::as_u64).expect("count") >= 1);

        // Same query again: served from cache.
        let (_, body) = post(server.addr(), "/query", q);
        let second = Json::parse(&body).expect("json");
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(first.get("hits"), second.get("hits"));

        let (status, body) = post(
            server.addr(),
            "/topk",
            r#"{"values": ["v0","v1","v2","v3","v4"], "k": 3}"#,
        );
        assert_eq!(status, 200, "{body}");
        let topk = Json::parse(&body).expect("json");
        assert_eq!(topk.get("count").and_then(Json::as_u64), Some(3));

        // A `k` on /query runs as top-k too (same semantics as a /batch
        // entry with `k`), never silently ignored.
        let (status, body) = post(
            server.addr(),
            "/query",
            r#"{"values": ["v0","v1","v2","v3","v4"], "k": 3}"#,
        );
        assert_eq!(status, 200, "{body}");
        let via_query = Json::parse(&body).expect("json");
        assert_eq!(via_query.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(via_query.get("hits"), topk.get("hits"));
        server.shutdown();
    }

    #[test]
    fn bad_requests_are_4xx_not_disconnects() {
        let server = boot(test_engine(4, false));
        let addr = server.addr();
        for (path, body) in [
            ("/query", "not json"),
            ("/query", "{}"),
            ("/query", r#"{"values": []}"#),
            ("/query", r#"{"values": [1, 2]}"#),
            ("/query", r#"{"values": ["a"], "threshold": 7}"#),
            ("/topk", r#"{"values": ["a"]}"#),
            ("/topk", r#"{"values": ["a"], "k": 0}"#),
            ("/batch", "{}"),
            ("/batch", r#"{"queries": []}"#),
        ] {
            let (status, response) = post(addr, path, body);
            assert_eq!(status, 400, "{path} {body} -> {response}");
        }
        // Top-k against an unranked index is a client error, not a crash.
        let (status, response) = post(addr, "/topk", r#"{"values": ["a","b"], "k": 2}"#);
        assert_eq!(status, 400, "{response}");
        // Unknown path / wrong method.
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/query").0, 405);
        server.shutdown();
    }

    #[test]
    fn debug_field_and_query_stat_aggregation() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let q = r#"{"values": ["v0","v1","v2","v3","v4","v5","v6","v7","v8","v9"], "threshold": 0.5, "debug": true}"#;
        let (status, body) = post(addr, "/query", q);
        assert_eq!(status, 200, "{body}");
        let first = Json::parse(&body).expect("json");
        let debug = first.get("debug").expect("debug object requested");
        let probed = debug
            .get("partitions_probed")
            .and_then(Json::as_u64)
            .expect("probed");
        let total = debug
            .get("partitions_total")
            .and_then(Json::as_u64)
            .expect("total");
        let candidates = debug.get("candidates").and_then(Json::as_u64).expect("c");
        let survivors = debug.get("survivors").and_then(Json::as_u64).expect("s");
        assert!(probed <= total, "{debug}");
        assert!(candidates >= survivors, "{debug}");
        assert_eq!(
            survivors,
            first.get("count").and_then(Json::as_u64).expect("count")
        );
        assert!(debug.get("wall_micros").and_then(Json::as_u64).is_some());

        // The cached replay returns the same stored stats.
        let (_, body) = post(addr, "/query", q);
        let second = Json::parse(&body).expect("json");
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(second.get("debug"), first.get("debug"));

        // Without the flag the field is absent.
        let (_, body) = post(
            addr,
            "/query",
            r#"{"values": ["v0","v1","v2"], "threshold": 0.5}"#,
        );
        assert!(Json::parse(&body).expect("json").get("debug").is_none());

        // A non-boolean debug flag is a 400.
        let (status, _) = post(addr, "/query", r#"{"values": ["v0"], "debug": 1}"#);
        assert_eq!(status, 400);

        // /stats aggregates executed-query counters; the cache hit is not
        // double counted (2 distinct searches ran: the debug one + the
        // 3-value one).
        let (_, body) = get(addr, "/stats");
        let stats = Json::parse(&body).expect("json");
        let totals = stats.get("query_stats").expect("query_stats");
        assert_eq!(totals.get("executed").and_then(Json::as_u64), Some(2));
        let agg_probed = totals
            .get("partitions_probed")
            .and_then(Json::as_u64)
            .expect("agg");
        assert!(agg_probed >= probed, "{totals}");
        assert!(
            totals.get("candidates").and_then(Json::as_u64).expect("c")
                >= totals.get("survivors").and_then(Json::as_u64).expect("s")
        );
        server.shutdown();
    }

    #[test]
    fn batch_fans_out_and_keeps_order() {
        let server = boot(test_engine(8, true));
        let queries: Vec<String> = (0..8)
            .map(|k| {
                let values: Vec<String> = (0..20 + 5 * k).map(|i| format!("\"v{i}\"")).collect();
                format!("{{\"values\": [{}], \"threshold\": 0.9}}", values.join(","))
            })
            .collect();
        let body = format!("{{\"queries\": [{}]}}", queries.join(","));
        let (status, response) = post(server.addr(), "/batch", &body);
        assert_eq!(status, 200, "{response}");
        let parsed = Json::parse(&response).expect("json");
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(8));
        let results = parsed.get("results").and_then(Json::as_array).expect("arr");
        // Query k is exactly domain k's value set: its own table must hit,
        // in order.
        for (k, result) in results.iter().enumerate() {
            let hits = result.get("hits").and_then(Json::as_array).expect("hits");
            assert!(
                hits.iter().any(|h| {
                    h.get("table").and_then(Json::as_str) == Some(format!("t{k}").as_str())
                }),
                "batch entry {k} missing self hit: {result}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn batch_partial_failures_stay_in_position() {
        // Hostile input: one malformed item must neither fail the batch
        // nor shift its neighbours — every item answers (or errors) in
        // its own position, with a typed message.
        let server = boot(test_engine(6, false)); // unranked: top-k items must error too
        let body = r#"{"queries": [
            {"values": ["v0","v1","v2","v3","v4"], "threshold": 0.5},
            {"values": []},
            {"values": [1, 2]},
            {"values": ["v0"], "threshold": 7},
            {"values": ["v0","v1"], "k": 2},
            {"values": ["v0"], "k": 0},
            {"values": ["v0"], "debug": 1},
            "not an object",
            {"values": ["v0","v1","v2","v3","v4"], "threshold": 0.5}
        ]}"#;
        let (status, response) = post(server.addr(), "/batch", body);
        assert_eq!(status, 200, "{response}");
        let parsed = Json::parse(&response).expect("json");
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(9));
        let results = parsed.get("results").and_then(Json::as_array).expect("arr");
        // Items 0 and 8 are valid and identical: both answer with hits.
        for &i in &[0usize, 8] {
            assert!(
                results[i].get("error").is_none(),
                "item {i}: {}",
                results[i]
            );
            assert!(
                results[i].get("hits").and_then(Json::as_array).is_some(),
                "item {i} lost its answer: {}",
                results[i]
            );
        }
        assert_eq!(results[0].get("hits"), results[8].get("hits"));
        // Identical uncached entries dispatch once: the duplicate borrows
        // the first occurrence's answer and reports it as cached.
        assert_eq!(results[0].get("cached"), Some(&Json::Bool(false)));
        assert_eq!(results[8].get("cached"), Some(&Json::Bool(true)));
        // Every hostile item carries its own typed error, in position.
        for (i, needle) in [
            (1usize, "must not be empty"),
            (2, "strings"),
            (3, "threshold"),
            (4, "top-k"),
            (5, "\"k\""),
            (6, "debug"),
            (7, "values"),
        ] {
            let msg = results[i]
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("item {i} should error: {}", results[i]));
            assert!(msg.contains(needle), "item {i}: {msg:?} missing {needle:?}");
            assert!(results[i].get("hits").is_none(), "item {i} answered anyway");
        }
        server.shutdown();
    }

    #[test]
    fn cache_key_includes_debug_flag() {
        // A cached non-debug response must never answer a debug request,
        // and vice versa — the flag is part of the cache key.
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let plain = r#"{"values": ["v0","v1","v2","v3","v4","v5"], "threshold": 0.5}"#;
        let debug =
            r#"{"values": ["v0","v1","v2","v3","v4","v5"], "threshold": 0.5, "debug": true}"#;

        let (_, body) = post(addr, "/query", plain);
        let first = Json::parse(&body).expect("json");
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        assert!(first.get("debug").is_none());

        // Same query with debug: a separate cache entry, never the plain
        // one replayed without its stats.
        let (_, body) = post(addr, "/query", debug);
        let second = Json::parse(&body).expect("json");
        assert_eq!(second.get("cached"), Some(&Json::Bool(false)), "{second}");
        assert!(second.get("debug").is_some(), "debug stats missing");

        // Each variant now replays from its own entry.
        let (_, body) = post(addr, "/query", debug);
        let replay = Json::parse(&body).expect("json");
        assert_eq!(replay.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(replay.get("debug"), second.get("debug"));
        let (_, body) = post(addr, "/query", plain);
        let replay = Json::parse(&body).expect("json");
        assert_eq!(replay.get("cached"), Some(&Json::Bool(true)));
        assert!(replay.get("debug").is_none(), "debug leaked into plain");
        server.shutdown();
    }

    #[test]
    fn stats_memory_covers_staged_backlog() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let memory = |addr| {
            let (_, body) = get(addr, "/stats");
            let stats = Json::parse(&body).expect("json");
            let m = stats.get("memory").expect("memory object").clone();
            (
                m.get("index_bytes").and_then(Json::as_u64).expect("index"),
                m.get("staged_bytes")
                    .and_then(Json::as_u64)
                    .expect("staged"),
            )
        };
        let (index_bytes, staged_bytes) = memory(addr);
        assert!(index_bytes > 0);
        assert_eq!(staged_bytes, 0);

        // Staging an insert grows the backlog accounting (the signature
        // alone is num_perm × 8 bytes).
        let values: Vec<String> = (0..24).map(|i| format!("\"m{i}\"")).collect();
        let (status, body) = post(
            addr,
            "/insert",
            &format!("{{\"values\": [{}]}}", values.join(",")),
        );
        assert_eq!(status, 200, "{body}");
        let (_, staged_after_insert) = memory(addr);
        assert!(
            staged_after_insert >= 256 * 8,
            "staged backlog under-reported: {staged_after_insert}"
        );

        // Commit folds the backlog into the index: staged accounting
        // drops back to zero.
        let (status, _) = post(addr, "/commit", "");
        assert_eq!(status, 200);
        let (index_after, staged_after_commit) = memory(addr);
        assert_eq!(staged_after_commit, 0);
        assert!(index_after > 0);
        server.shutdown();
    }

    #[test]
    fn insert_remove_commit_endpoints() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();

        // Stage an insert; not yet visible.
        let values: Vec<String> = (0..30).map(|i| format!("\"w{i}\"")).collect();
        let insert_body = format!(
            "{{\"values\": [{}], \"table\": \"live\", \"column\": \"c\"}}",
            values.join(",")
        );
        let (status, body) = post(addr, "/insert", &insert_body);
        assert_eq!(status, 200, "{body}");
        let staged = Json::parse(&body).expect("json");
        assert_eq!(staged.get("status").and_then(Json::as_str), Some("staged"));
        assert_eq!(staged.get("id").and_then(Json::as_u64), Some(6));
        let query_body = format!("{{\"values\": [{}], \"threshold\": 0.9}}", values.join(","));
        let (_, pre) = post(addr, "/query", &query_body);
        let pre = Json::parse(&pre).expect("json");
        assert_eq!(pre.get("count").and_then(Json::as_u64), Some(0));

        // Stage a remove; /stats shows both.
        let (status, body) = post(addr, "/remove", r#"{"id": 2}"#);
        assert_eq!(status, 200, "{body}");
        let (_, stats) = get(addr, "/stats");
        let stats = Json::parse(&stats).expect("json");
        let s = stats.get("staged").expect("staged");
        assert_eq!(s.get("inserts").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("removes").and_then(Json::as_u64), Some(1));

        // Bad mutations are 400s.
        assert_eq!(post(addr, "/remove", r#"{"id": 2}"#).0, 400, "double");
        assert_eq!(post(addr, "/remove", r#"{"id": 999}"#).0, 400, "unknown");
        assert_eq!(post(addr, "/remove", "{}").0, 400);
        assert_eq!(post(addr, "/insert", r#"{"values": []}"#).0, 400);
        assert_eq!(post(addr, "/insert", r#"{"values": [3]}"#).0, 400);
        assert_eq!(get(addr, "/commit").0, 405);

        // Commit: new generation, insert visible, removed id gone.
        let (status, body) = post(addr, "/commit", "");
        assert_eq!(status, 200, "{body}");
        let committed = Json::parse(&body).expect("json");
        assert_eq!(
            committed.get("status").and_then(Json::as_str),
            Some("committed")
        );
        assert_eq!(committed.get("applied").and_then(Json::as_u64), Some(2));
        assert_eq!(committed.get("generation").and_then(Json::as_u64), Some(2));
        assert_eq!(committed.get("domains").and_then(Json::as_u64), Some(6));
        let (_, post_commit) = post(addr, "/query", &query_body);
        let post_commit = Json::parse(&post_commit).expect("json");
        assert_eq!(
            post_commit.get("cached"),
            Some(&Json::Bool(false)),
            "new generation must not serve the stale cached answer"
        );
        let hits = post_commit
            .get("hits")
            .and_then(Json::as_array)
            .expect("hits");
        assert!(
            hits.iter()
                .any(|h| h.get("id").and_then(Json::as_u64) == Some(6)
                    && h.get("table").and_then(Json::as_str) == Some("live")),
            "{post_commit}"
        );

        // Idempotent empty commit.
        let (status, body) = post(addr, "/commit", "");
        assert_eq!(status, 200);
        assert_eq!(
            Json::parse(&body)
                .expect("json")
                .get("status")
                .and_then(Json::as_str),
            Some("nothing staged")
        );
        server.shutdown();
    }

    /// Satellite regression: the generation-keyed cache must never replay
    /// a pre-commit answer after a commit OR a compaction swaps the
    /// snapshot. insert → query → commit → query must observe the new
    /// record, and the post-compaction replay must still answer fresh.
    #[test]
    fn cache_never_serves_pre_commit_hits_after_commit_or_compaction() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let values: Vec<String> = (0..25).map(|i| format!("\"g{i}\"")).collect();
        let query_body = format!("{{\"values\": [{}], \"threshold\": 0.9}}", values.join(","));

        // Stage the domain, then query it: a miss with zero hits, cached
        // on the pre-commit generation.
        let (status, _) = post(
            addr,
            "/insert",
            &format!("{{\"values\": [{}]}}", values.join(",")),
        );
        assert_eq!(status, 200);
        let (_, body) = post(addr, "/query", &query_body);
        let miss = Json::parse(&body).expect("json");
        assert_eq!(miss.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(miss.get("count").and_then(Json::as_u64), Some(0));
        let (_, body) = post(addr, "/query", &query_body);
        let replay = Json::parse(&body).expect("json");
        assert_eq!(replay.get("cached"), Some(&Json::Bool(true)));

        // Commit seals the insert into a segment and bumps the
        // generation: the cached zero-hit answer must be unreachable.
        let (status, body) = post(addr, "/commit", "");
        assert_eq!(status, 200, "{body}");
        let committed = Json::parse(&body).expect("json");
        assert_eq!(committed.get("sealed"), Some(&Json::Bool(true)));
        assert_eq!(committed.get("segments").and_then(Json::as_u64), Some(1));
        let (_, body) = post(addr, "/query", &query_body);
        let fresh = Json::parse(&body).expect("json");
        assert_eq!(
            fresh.get("cached"),
            Some(&Json::Bool(false)),
            "stale pre-commit answer replayed: {fresh}"
        );
        let hits = fresh.get("hits").and_then(Json::as_array).expect("hits");
        assert!(
            hits.iter()
                .any(|h| h.get("id").and_then(Json::as_u64) == Some(6)),
            "committed insert invisible: {fresh}"
        );

        // Compaction folds the segment into the base and bumps again: the
        // post-commit cache entry is dead weight too, and the answer must
        // survive the fold.
        let (status, body) = post(addr, "/compact", "");
        assert_eq!(status, 200, "{body}");
        let (_, body) = post(addr, "/query", &query_body);
        let folded = Json::parse(&body).expect("json");
        assert_eq!(folded.get("cached"), Some(&Json::Bool(false)), "{folded}");
        assert_eq!(fresh.get("hits"), folded.get("hits"));
        server.shutdown();
    }

    #[test]
    fn compact_endpoint_folds_segments_and_stats_track_drift() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let seg_stats = |addr| {
            let (_, body) = get(addr, "/stats");
            let stats = Json::parse(&body).expect("json");
            (
                stats.get("segments").and_then(Json::as_u64).expect("segs"),
                stats
                    .get("tombstones")
                    .and_then(Json::as_u64)
                    .expect("tombs"),
                stats
                    .get("last_compaction")
                    .and_then(Json::as_u64)
                    .expect("last"),
            )
        };
        assert_eq!(seg_stats(addr), (0, 0, 0));

        // One insert + one remove, committed: one sealed segment, one
        // tombstone, no compaction yet.
        let values: Vec<String> = (0..22).map(|i| format!("\"s{i}\"")).collect();
        let (status, _) = post(
            addr,
            "/insert",
            &format!("{{\"values\": [{}]}}", values.join(",")),
        );
        assert_eq!(status, 200);
        assert_eq!(post(addr, "/remove", r#"{"id": 1}"#).0, 200);
        let (status, body) = post(addr, "/commit", "");
        assert_eq!(status, 200, "{body}");
        let committed = Json::parse(&body).expect("json");
        assert_eq!(committed.get("tombstones").and_then(Json::as_u64), Some(1));
        assert_eq!(seg_stats(addr), (1, 1, 0));

        // Compaction erases the drift and records its generation.
        let (status, body) = post(addr, "/compact", "");
        assert_eq!(status, 200, "{body}");
        let compacted = Json::parse(&body).expect("json");
        assert_eq!(
            compacted.get("status").and_then(Json::as_str),
            Some("compacted")
        );
        assert_eq!(compacted.get("segments").and_then(Json::as_u64), Some(0));
        assert_eq!(compacted.get("tombstones").and_then(Json::as_u64), Some(0));
        assert_eq!(compacted.get("domains").and_then(Json::as_u64), Some(6));
        let generation = compacted
            .get("generation")
            .and_then(Json::as_u64)
            .expect("generation");
        assert_eq!(seg_stats(addr), (0, 0, generation));
        assert_eq!(get(addr, "/compact").0, 405);
        server.shutdown();
    }

    /// The background maintenance thread under the default leveled
    /// policy: every commit wakes it, and it folds only overflowing
    /// levels — no `/compact` call involved, no full rebuild, and the
    /// sealed stack stays within the policy's segment bound.
    #[test]
    fn background_maintenance_bounds_the_segment_stack() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let commits = 2 * lshe_core::MAX_SEGMENTS;
        for k in 0..commits {
            let values: Vec<String> = (0..20).map(|i| format!("\"b{k}x{i}\"")).collect();
            let (status, _) = post(
                addr,
                "/insert",
                &format!("{{\"values\": [{}]}}", values.join(",")),
            );
            assert_eq!(status, 200);
            let (status, body) = post(addr, "/commit", "");
            assert_eq!(status, 200, "{body}");
        }
        // Maintenance runs asynchronously; poll /stats until the plan is
        // quiescent with the stack inside the bound and at least one
        // partial fold recorded.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (_, body) = get(addr, "/stats");
            let stats = Json::parse(&body).expect("json");
            let maint = stats.get("maintenance").expect("maintenance object");
            let segments = stats.get("segments").and_then(Json::as_u64).expect("segs");
            let bound = maint
                .get("segment_bound")
                .and_then(Json::as_u64)
                .expect("bound");
            let queued = maint.get("queued").and_then(Json::as_u64).expect("queued");
            let merges = maint.get("merges").and_then(Json::as_u64).expect("merges");
            assert_eq!(maint.get("policy").and_then(Json::as_str), Some("leveled"));
            if queued == 0 && merges > 0 && segments <= bound {
                // Every committed domain survived the background folds.
                assert_eq!(
                    stats.get("domains").and_then(Json::as_u64),
                    Some(6 + commits as u64)
                );
                break;
            }
            assert!(
                Instant::now() < deadline,
                "maintenance never drained the stack: {stats}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
    }

    /// The tiered policy preserves the pre-maintenance behaviour: once
    /// commits stack up `--compact-segments` sealed segments, the
    /// maintenance thread full-folds the stack off the request path.
    #[test]
    fn tiered_maintenance_full_folds_past_segment_threshold() {
        let server = boot_with(
            test_engine(6, true),
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 2,
                cache_capacity: 16,
                merge_policy: MergePolicyKind::Tiered,
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();
        for k in 0..lshe_core::MAX_SEGMENTS {
            let values: Vec<String> = (0..20).map(|i| format!("\"b{k}x{i}\"")).collect();
            let (status, _) = post(
                addr,
                "/insert",
                &format!("{{\"values\": [{}]}}", values.join(",")),
            );
            assert_eq!(status, 200);
            let (status, body) = post(addr, "/commit", "");
            assert_eq!(status, 200, "{body}");
        }
        // The final commit crossed the threshold; poll /stats until the
        // background full fold lands.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (_, body) = get(addr, "/stats");
            let stats = Json::parse(&body).expect("json");
            let segments = stats.get("segments").and_then(Json::as_u64).expect("segs");
            let last = stats
                .get("last_compaction")
                .and_then(Json::as_u64)
                .expect("last");
            if segments == 0 && last > 0 {
                // Every committed domain survived the background fold.
                assert_eq!(
                    stats.get("domains").and_then(Json::as_u64),
                    Some(6 + lshe_core::MAX_SEGMENTS as u64)
                );
                break;
            }
            assert!(
                Instant::now() < deadline,
                "maintenance never folded the stack: {stats}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
    }

    /// Satellite regression: `/compact` must never block the reactor. A
    /// full fold — artificially stretched to hundreds of milliseconds —
    /// runs on the maintenance thread while queries keep answering fast,
    /// and `?async=1` acknowledges without waiting for the fold at all.
    #[test]
    fn queries_stay_fast_while_compaction_runs() {
        let server = boot(test_engine(8, true));
        let addr = server.addr();
        // Seal one segment so the fold has work to do.
        let (status, _) = post(
            addr,
            "/insert",
            r#"{"values": ["q0","q1","q2","q3","q4","q5"]}"#,
        );
        assert_eq!(status, 200);
        assert_eq!(post(addr, "/commit", "").0, 200);
        server
            .maintainer
            .set_full_delay_for_tests(Duration::from_millis(500));
        let (status, body) = post(addr, "/compact?async=1", "");
        assert_eq!(status, 200, "{body}");
        let scheduled = Json::parse(&body).expect("json");
        assert_eq!(
            scheduled.get("status").and_then(Json::as_str),
            Some("scheduled")
        );
        // The fold is now pending for >= 500ms; prove the probe window
        // overlaps it…
        let (_, body) = get(addr, "/stats");
        let stats = Json::parse(&body).expect("json");
        let full_before = stats
            .get("maintenance")
            .expect("maintenance object")
            .get("full_merges")
            .and_then(Json::as_u64)
            .expect("full_merges");
        assert_eq!(full_before, 0, "fold finished before the probe began");
        // …while queries answer well inside the latency budget. Distinct
        // thresholds per probe keep the cache from absorbing the work.
        let mut latencies = Vec::new();
        let probe_until = Instant::now() + Duration::from_millis(350);
        let mut i = 0u64;
        while Instant::now() < probe_until {
            let q = format!(
                "{{\"values\": [\"v0\",\"v1\",\"v2\",\"v3\",\"v4\",\"v5\",\"v6\",\"v7\",\"v8\",\"v9\"], \"threshold\": 0.{:03}}}",
                500 + (i % 100)
            );
            let started = Instant::now();
            let (status, _) = post(addr, "/query", &q);
            assert_eq!(status, 200);
            latencies.push(started.elapsed());
            i += 1;
        }
        assert!(!latencies.is_empty());
        latencies.sort();
        let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
        // The 10ms p99 budget is the release-mode contract; debug builds
        // get slack for the unoptimised sketch math.
        let budget = if cfg!(debug_assertions) {
            Duration::from_millis(250)
        } else {
            Duration::from_millis(10)
        };
        assert!(
            p99 < budget,
            "p99 {p99:?} over {budget:?} across {} queries during compaction",
            latencies.len()
        );
        // The scheduled fold still lands: poll until it completes.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (_, body) = get(addr, "/stats");
            let stats = Json::parse(&body).expect("json");
            let m = stats.get("maintenance").expect("maintenance object");
            if m.get("full_merges").and_then(Json::as_u64) == Some(1) {
                assert_eq!(stats.get("segments").and_then(Json::as_u64), Some(0));
                break;
            }
            assert!(
                Instant::now() < deadline,
                "async compaction never landed: {stats}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
    }

    /// Like [`read_resp`] but also surfaces the `Retry-After` header.
    fn read_resp_retry<R: BufRead>(reader: &mut R) -> Option<(u16, Option<u64>, String)> {
        let mut status_line = String::new();
        if reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).ok()?;
            let line = line.trim_end().to_ascii_lowercase();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("content-length:") {
                content_length = v.trim().parse().ok()?;
            } else if let Some(v) = line.strip_prefix("retry-after:") {
                retry_after = v.trim().parse().ok();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).ok()?;
        Some((status, retry_after, String::from_utf8(body).ok()?))
    }

    #[test]
    fn drain_answers_pipelined_successors_with_503_retry_after() {
        let server = boot(test_engine(4, false));
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // One burst: /shutdown with a request pipelined behind it. The
        // successor must get the typed drain refusal (503 + Retry-After,
        // how a coordinator tells drain from failure) — not a silent
        // hangup, and never a normal answer.
        stream
            .write_all(
                b"POST /shutdown HTTP/1.1\r\nhost: x\r\ncontent-length: 0\r\n\r\n\
                  GET /health HTTP/1.1\r\nhost: x\r\n\r\n",
            )
            .expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let (s1, retry1, b1) = read_resp_retry(&mut reader).expect("shutdown response");
        assert_eq!(s1, 200, "{b1}");
        assert_eq!(retry1, None);
        let (s2, retry2, b2) = read_resp_retry(&mut reader).expect("drain refusal");
        assert_eq!(s2, 503, "{b2}");
        assert_eq!(retry2, Some(1), "Retry-After missing: {b2}");
        assert!(b2.contains("draining"), "{b2}");
        // After the refusal the connection closes, and the server drains.
        assert!(read_resp_retry(&mut reader).is_none(), "must close");
        server.join();
    }

    #[test]
    fn shutdown_endpoint_stops_server() {
        let server = boot(test_engine(4, false));
        let addr = server.addr();
        let (status, body) = post(addr, "/shutdown", "");
        assert_eq!(status, 200, "{body}");
        server.join();
        // The listener is gone: new connections must fail (allow the OS a
        // moment to tear the socket down).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        // Mixed pipelined burst on one connection, sent before any
        // response is read: a cache-missing query (slow, goes through the
        // compute pool), /health (fast, inline), the same query again,
        // and /stats. Responses must come back strictly in request order.
        let q = r#"{"values": ["v0","v1","v2","v3","v4","v5","v6"], "threshold": 0.5}"#;
        let mut client = HttpClient::connect(addr);
        client.send("POST", "/query", Some(q));
        client.send("GET", "/health", None);
        client.send("POST", "/query", Some(q));
        client.send("GET", "/stats", None);
        let (s1, b1) = client.read_response();
        let (s2, b2) = client.read_response();
        let (s3, b3) = client.read_response();
        let (s4, b4) = client.read_response();
        assert_eq!(
            (s1, s2, s3, s4),
            (200, 200, 200, 200),
            "{b1} {b2} {b3} {b4}"
        );
        let r1 = Json::parse(&b1).expect("json");
        assert!(r1.get("hits").is_some(), "slot 1 should be the query: {r1}");
        let r2 = Json::parse(&b2).expect("json");
        assert_eq!(
            r2.get("status").and_then(Json::as_str),
            Some("ok"),
            "slot 2 should be /health: {r2}"
        );
        let r3 = Json::parse(&b3).expect("json");
        assert_eq!(r1.get("hits"), r3.get("hits"), "same query, same answer");
        let r4 = Json::parse(&b4).expect("json");
        assert!(
            r4.get("requests").is_some(),
            "slot 4 should be /stats: {r4}"
        );
        // The reactor saw at least 2 requests in flight at once.
        let hwm = r4
            .get("server")
            .and_then(|s| s.get("pipeline_depth_hwm"))
            .and_then(Json::as_u64)
            .expect("hwm");
        assert!(hwm >= 2, "pipelined burst not observed: hwm={hwm}");
        server.shutdown();
    }

    #[test]
    fn malformed_mid_pipeline_answers_valid_prefix_then_closes() {
        let server = boot(test_engine(4, false));
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // Two valid requests, then garbage that can never parse as HTTP.
        let burst = b"GET /health HTTP/1.1\r\nhost: x\r\n\r\n\
                      GET /health HTTP/1.1\r\nhost: x\r\n\r\n\
                      NOT AN HTTP LINE AT ALL\r\n\r\n";
        stream.write_all(burst).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        // The valid prefix answers normally…
        let (s1, _) = read_resp(&mut reader).expect("first response");
        assert_eq!(s1, 200);
        let (s2, _) = read_resp(&mut reader).expect("second response");
        assert_eq!(s2, 200);
        // …the malformed request gets a 400, then the connection closes.
        let (s3, b3) = read_resp(&mut reader).expect("error response");
        assert_eq!(s3, 400, "{b3}");
        assert!(read_resp(&mut reader).is_none(), "connection must close");
        server.shutdown();
    }

    #[test]
    fn slow_drip_body_hits_request_deadline() {
        let server = boot_with(
            test_engine(4, false),
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 2,
                cache_capacity: 16,
                request_timeout_ms: 300,
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // Head promises a 50-byte body; then drip one byte at a time so
        // the request never completes. The whole-request deadline must
        // answer 400 and close rather than pin the connection forever.
        stream
            .write_all(b"POST /query HTTP/1.1\r\nhost: x\r\ncontent-length: 50\r\n\r\n")
            .expect("head");
        let reader_stream = stream.try_clone().expect("clone");
        let dripper = std::thread::spawn(move || {
            let mut stream = stream;
            for _ in 0..40 {
                if stream.write_all(b"x").is_err() {
                    return; // server closed on us: exactly what we expect
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        let mut reader = BufReader::new(reader_stream);
        let (status, body) = read_resp(&mut reader).expect("deadline response");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("timed out"), "{body}");
        assert!(read_resp(&mut reader).is_none(), "connection must close");
        dripper.join().expect("dripper");
        server.shutdown();
    }

    #[test]
    fn connection_cap_closes_excess_connections() {
        let server = boot_with(
            test_engine(4, false),
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 2,
                cache_capacity: 16,
                max_connections: 2,
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();
        // Fill the cap with two live keep-alive connections (a request on
        // each proves they are registered, not just queued in accept).
        let mut c1 = HttpClient::connect(addr);
        let mut c2 = HttpClient::connect(addr);
        assert_eq!(c1.request("GET", "/health", None).0, 200);
        assert_eq!(c2.request("GET", "/health", None).0, 200);
        // The third connection is accepted by the kernel but closed by
        // the server without an answer.
        let mut excess = TcpStream::connect(addr).expect("connect");
        excess
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        excess
            .write_all(b"GET /health HTTP/1.1\r\nhost: x\r\n\r\n")
            .expect("send");
        // Clean FIN (EOF) and RST (reset: the server dropped the socket
        // with our request bytes still unread) are both "closed
        // unanswered"; a response is the only failure.
        let mut buf = [0u8; 64];
        match excess.read(&mut buf) {
            Ok(0) => {}
            Ok(n) => panic!(
                "over-cap connection was answered: {:?}",
                String::from_utf8_lossy(&buf[..n])
            ),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
        }
        // Capacity frees when a connection leaves.
        drop(c1);
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(get(addr, "/health").0, 200);
        server.shutdown();
    }

    #[test]
    fn byte_dripped_request_head_still_parses() {
        // The resumable parser must assemble a request that arrives one
        // byte at a time (within the deadline) exactly like one burst.
        let server = boot(test_engine(4, false));
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let raw = b"GET /health HTTP/1.1\r\nhost: x\r\n\r\n";
        for chunk in raw.chunks(3) {
            stream.write_all(chunk).expect("drip");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut reader = BufReader::new(stream);
        let (status, body) = read_resp(&mut reader).expect("response");
        assert_eq!(status, 200, "{body}");
        server.shutdown();
    }
}
