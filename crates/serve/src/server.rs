//! The HTTP server: listener, routing, endpoints, graceful shutdown.
//!
//! Endpoints (see `docs/API.md` for request/response examples):
//!
//! | method | path        | purpose                                         |
//! |--------|-------------|-------------------------------------------------|
//! | GET    | `/health`   | liveness + index summary                        |
//! | GET    | `/stats`    | index, cache, traffic, and staging statistics   |
//! | POST   | `/query`    | one containment query                           |
//! | POST   | `/topk`     | one top-k query (needs a ranked index)          |
//! | POST   | `/batch`    | many queries, fanned out across worker threads  |
//! | POST   | `/insert`   | stage one new domain (delta-logged)             |
//! | POST   | `/remove`   | stage the removal of a domain by id             |
//! | POST   | `/commit`   | apply staged mutations as a new generation      |
//! | POST   | `/reload`   | hot-swap the index snapshot                     |
//! | POST   | `/shutdown` | graceful stop (drain in-flight, then exit)      |

use crate::cache::{signature_digest, CacheStats, LruCache, QueryKey};
use crate::engine::{Engine, EngineError, Snapshot};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::Json;
use crate::pool::{effective_threads, ThreadPool};
use lshe_core::{Query, QueryStats, SearchHit, SearchOutcome};
use lshe_corpus::Domain;
use lshe_minhash::Signature;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker waits for the *next* request on a hot connection
/// before parking it (keeps rapid-fire clients on-worker, frees the worker
/// from quiet ones).
const HOT_WAIT: Duration = Duration::from_millis(5);
/// Requests one worker turn may serve before the connection is forcibly
/// parked — fairness bound so a hot client cannot monopolise a worker.
const MAX_REQUESTS_PER_TURN: usize = 32;
/// Parker sweep tick while traffic is flowing: upper bound on the latency
/// for noticing a parked connection became readable.
const PARK_TICK: Duration = Duration::from_millis(1);
/// Parker backoff ceiling: after empty sweeps the tick doubles up to this,
/// so a fully idle server does not burn CPU probing quiet connections.
const PARK_TICK_MAX: Duration = Duration::from_millis(16);
/// Whole-request read window once the first byte has arrived (slow-client
/// bound — a hard deadline, not a per-read timeout).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);
/// Socket-level read timeout while a request is being read; each timeout
/// re-checks the [`REQUEST_TIMEOUT`] deadline.
const REQUEST_POLL: Duration = Duration::from_millis(500);
/// Default containment threshold when a query omits one (matches the CLI).
const DEFAULT_THRESHOLD: f64 = 0.7;
/// Upper bound on `k` and on batch size, to bound per-request work.
const MAX_K: usize = 10_000;
/// Upper bound on queries per `/batch` request.
const MAX_BATCH: usize = 4_096;
/// Parked connections silent for this long are dropped.
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);
/// Maximum parked connections (fd-exhaustion bound); beyond it the
/// longest-idle connection is evicted.
const MAX_IDLE: usize = 4_096;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// LRU query-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            threads: 0,
            cache_capacity: 1024,
        }
    }
}

/// Per-endpoint traffic counters.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    topk: AtomicU64,
    batches: AtomicU64,
    batch_queries: AtomicU64,
    reloads: AtomicU64,
    inserts: AtomicU64,
    removes: AtomicU64,
    commits: AtomicU64,
    errors: AtomicU64,
}

/// Aggregated per-query execution counters ([`QueryStats`]) across every
/// search the engine actually executed (cache hits are excluded — their
/// stats were counted when first computed). Exposed on `/stats`.
#[derive(Debug, Default)]
struct QueryStatTotals {
    executed: AtomicU64,
    partitions_probed: AtomicU64,
    candidates: AtomicU64,
    survivors: AtomicU64,
    wall_micros: AtomicU64,
}

impl QueryStatTotals {
    fn record(&self, stats: &QueryStats) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.partitions_probed
            .fetch_add(stats.partitions_probed as u64, Ordering::Relaxed);
        self.candidates
            .fetch_add(stats.candidates as u64, Ordering::Relaxed);
        self.survivors
            .fetch_add(stats.survivors as u64, Ordering::Relaxed);
        self.wall_micros
            .fetch_add(stats.wall_micros, Ordering::Relaxed);
    }
}

/// State shared by every connection handler.
struct Shared {
    engine: Arc<Engine>,
    cache: LruCache<QueryKey, Arc<SearchOutcome>>,
    counters: Counters,
    query_totals: QueryStatTotals,
    started: Instant,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    threads: usize,
}

/// A running server; dropping the handle shuts it down gracefully.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral `:0` bind).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop and waits for it: the listener closes, idle
    /// connections are released, and in-flight requests complete.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server stops on its own (`/shutdown` endpoint or a
    /// listener failure).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    fn stop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            wake_listener(self.addr);
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Unblocks a listener parked in `accept` by poking it with a connection.
/// Wildcard binds (`0.0.0.0` / `::`) are not connectable addresses, so the
/// poke targets loopback on the bound port instead.
fn wake_listener(addr: SocketAddr) {
    let mut target = addr;
    if target.ip().is_unspecified() {
        target.set_ip(match target {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&target, Duration::from_millis(250));
}

/// Binds `config.addr` and spawns the accept loop plus its worker pool.
///
/// # Errors
/// Propagates the bind failure.
pub fn start(engine: Arc<Engine>, config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let threads = effective_threads(config.threads);
    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        engine,
        cache: LruCache::new(config.cache_capacity),
        counters: Counters::default(),
        query_totals: QueryStatTotals::default(),
        started: Instant::now(),
        shutdown: Arc::clone(&shutdown),
        addr,
        threads,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("lshe-serve-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

/// One live connection: the write half plus a buffered read half.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn new(stream: TcpStream) -> Option<Self> {
        // Responses are written in one small burst; Nagle + delayed ACK
        // would add ~40 ms to every keep-alive round trip.
        stream.set_nodelay(true).ok()?;
        let read_half = stream.try_clone().ok()?;
        Some(Self {
            stream,
            reader: BufReader::new(read_half),
        })
    }
}

/// Messages to the parker thread.
enum ConnEvent {
    /// A connection whose worker turn ended with the peer quiet.
    Parked(Conn),
}

/// Connection lifecycle (see module docs): `accept` hands a new connection
/// straight to the pool; a worker serves up to [`MAX_REQUESTS_PER_TURN`]
/// requests, then *parks* the connection if the peer goes quiet for
/// [`HOT_WAIT`]. The parker thread sweeps parked connections every
/// [`PARK_TICK`] and redispatches any that became readable. This keeps the
/// executor sized to the hardware while supporting arbitrarily many
/// keep-alive connections with no head-of-line blocking.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let pool = Arc::new(ThreadPool::new(shared.threads, "lshe-serve-worker"));
    let (park_tx, park_rx) = std::sync::mpsc::channel::<ConnEvent>();
    let parker = {
        let pool = Arc::clone(&pool);
        let shared = Arc::clone(shared);
        let park_tx = park_tx.clone();
        std::thread::Builder::new()
            .name("lshe-serve-parker".to_owned())
            .spawn(move || parker_loop(&park_rx, &park_tx, &pool, &shared))
            .expect("spawn parker thread")
    };
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = Conn::new(stream) {
                    dispatch_turn(&pool, conn, shared, &park_tx);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failures (ECONNABORTED on a reset
                // handshake, EMFILE under fd pressure, …) must not kill a
                // long-lived server: back off briefly and keep accepting.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Shutdown: the flag tells the parker (and any worker turn) to wind
    // down; dropping the pool joins workers after in-flight work finishes.
    shared.shutdown.store(true, Ordering::SeqCst);
    drop(park_tx);
    let _ = parker.join();
    drop(pool);
}

/// Queues one worker turn for `conn`.
fn dispatch_turn(
    pool: &Arc<ThreadPool>,
    conn: Conn,
    shared: &Arc<Shared>,
    park_tx: &std::sync::mpsc::Sender<ConnEvent>,
) {
    let shared = Arc::clone(shared);
    let park_tx = park_tx.clone();
    pool.execute(move || serve_turn(conn, &shared, &park_tx));
}

/// Owns every parked (idle keep-alive) connection; sweeps for readability
/// every [`PARK_TICK`] and redispatches ready ones to the worker pool.
/// Connections silent for [`IDLE_TIMEOUT`] are dropped, and the lot is
/// capped at [`MAX_IDLE`] (longest-idle evicted first) so silent peers
/// cannot exhaust file descriptors.
fn parker_loop(
    park_rx: &std::sync::mpsc::Receiver<ConnEvent>,
    park_tx: &std::sync::mpsc::Sender<ConnEvent>,
    pool: &Arc<ThreadPool>,
    shared: &Arc<Shared>,
) {
    let mut idle: Vec<(Conn, Instant)> = Vec::new();
    let mut tick = PARK_TICK;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // parked connections are idle: safe to drop them
        }
        // Sweep: move every readable (or dead/expired) connection out.
        // Parked sockets sit in non-blocking mode (flipped once on park,
        // once on dispatch), so each probe is a single peek syscall.
        let now = Instant::now();
        let mut dispatched = false;
        let mut i = 0;
        while i < idle.len() {
            if now.duration_since(idle[i].1) >= IDLE_TIMEOUT {
                idle.swap_remove(i);
                continue;
            }
            match park_readiness(&mut idle[i].0) {
                ParkState::Ready => {
                    let (conn, _) = idle.swap_remove(i);
                    if conn.stream.set_nonblocking(false).is_ok() {
                        dispatched = true;
                        dispatch_turn(pool, conn, shared, park_tx);
                    }
                }
                ParkState::Closed => {
                    idle.swap_remove(i);
                }
                ParkState::Quiet => i += 1,
            }
        }
        // Adaptive cadence: stay sharp while work is flowing, back off to
        // PARK_TICK_MAX when every sweep comes up empty.
        tick = if dispatched {
            PARK_TICK
        } else {
            (tick * 2).min(PARK_TICK_MAX)
        };
        // Block until the next parked connection arrives or the tick
        // elapses, whichever is first.
        match park_rx.recv_timeout(tick) {
            Ok(ConnEvent::Parked(conn)) => {
                if idle.len() >= MAX_IDLE {
                    // Evict the longest-idle connection to stay bounded.
                    if let Some(oldest) = (0..idle.len()).min_by_key(|&j| idle[j].1) {
                        idle.swap_remove(oldest);
                    }
                }
                if conn.stream.set_nonblocking(true).is_ok() {
                    idle.push((conn, Instant::now()));
                }
                tick = PARK_TICK;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Accept loop is gone; keep sweeping until shutdown flips.
                std::thread::sleep(tick);
            }
        }
    }
}

enum ParkState {
    Ready,
    Quiet,
    Closed,
}

/// Readability probe for a parked connection. The socket is already in
/// non-blocking mode (set when parked), so this is one `peek` syscall.
fn park_readiness(conn: &mut Conn) -> ParkState {
    if !conn.reader.buffer().is_empty() {
        return ParkState::Ready; // pipelined bytes already buffered
    }
    let mut probe = [0u8; 1];
    match conn.stream.peek(&mut probe) {
        Ok(0) => ParkState::Closed,
        Ok(_) => ParkState::Ready,
        Err(e)
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::Interrupted =>
        {
            ParkState::Quiet
        }
        Err(_) => ParkState::Closed,
    }
}

/// Whether the next request's first byte arrived within the current read
/// timeout.
enum NextRequest {
    Data,
    Quiet,
    Closed,
}

fn await_first_byte(reader: &mut BufReader<TcpStream>) -> NextRequest {
    if !reader.buffer().is_empty() {
        return NextRequest::Data;
    }
    loop {
        match reader.fill_buf() {
            Ok([]) => return NextRequest::Closed,
            Ok(_) => return NextRequest::Data,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return NextRequest::Quiet;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return NextRequest::Closed,
        }
    }
}

/// One worker turn: serve consecutive requests on `conn` until the peer
/// goes quiet (→ park), the turn budget is spent (→ park, for fairness),
/// the peer closes, or shutdown begins.
fn serve_turn(mut conn: Conn, shared: &Arc<Shared>, park_tx: &std::sync::mpsc::Sender<ConnEvent>) {
    for served in 0.. {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if served >= MAX_REQUESTS_PER_TURN {
            let _ = park_tx.send(ConnEvent::Parked(conn));
            return;
        }
        // Short wait for the next request; quiet connections get parked so
        // the worker can serve someone else.
        if conn.stream.set_read_timeout(Some(HOT_WAIT)).is_err() {
            return;
        }
        match await_first_byte(&mut conn.reader) {
            NextRequest::Data => {}
            NextRequest::Quiet => {
                let _ = park_tx.send(ConnEvent::Parked(conn));
                return;
            }
            NextRequest::Closed => return,
        }
        // A request is inbound: short socket timeouts, hard whole-request
        // deadline (so a byte-dripping client cannot pin this worker).
        if conn.stream.set_read_timeout(Some(REQUEST_POLL)).is_err() {
            return;
        }
        let deadline = Instant::now() + REQUEST_TIMEOUT;
        let request = match read_request(&mut conn.reader, Some(deadline)) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let (status, reason) = match &e {
                    HttpError::TooLarge(_) => (413, "Payload Too Large"),
                    HttpError::Unsupported(_) => (501, "Not Implemented"),
                    _ => (400, "Bad Request"),
                };
                let body = Json::obj(vec![("error", Json::str(e.to_string()))]).render();
                let _ = write_response(
                    &mut conn.stream,
                    status,
                    reason,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        };
        let keep_alive = !request.wants_close();
        let outcome = route(shared, &request);
        let body = outcome.body.render();
        if write_response(
            &mut conn.stream,
            outcome.status,
            outcome.reason,
            "application/json",
            body.as_bytes(),
            keep_alive && !outcome.close_after,
        )
        .is_err()
        {
            return;
        }
        if outcome.close_after {
            // `/shutdown`: flip the flag only after the response is on the
            // wire, then unpark the listener.
            shared.shutdown.store(true, Ordering::SeqCst);
            wake_listener(shared.addr);
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// One routed response.
struct Outcome {
    status: u16,
    reason: &'static str,
    body: Json,
    close_after: bool,
}

impl Outcome {
    fn ok(body: Json) -> Self {
        Self {
            status: 200,
            reason: "OK",
            body,
            close_after: false,
        }
    }

    fn error(status: u16, reason: &'static str, msg: impl Into<String>) -> Self {
        Self {
            status,
            reason,
            body: Json::obj(vec![("error", Json::str(msg.into()))]),
            close_after: false,
        }
    }
}

fn route(shared: &Arc<Shared>, request: &Request) -> Outcome {
    let outcome = match (request.method.as_str(), request.path()) {
        ("GET", "/health") => handle_health(shared),
        ("GET", "/stats") => handle_stats(shared),
        ("POST", "/query") => handle_query(shared, request, false),
        ("POST", "/topk") => handle_query(shared, request, true),
        ("POST", "/batch") => handle_batch(shared, request),
        ("POST", "/reload") => handle_reload(shared, request),
        ("POST", "/insert") => handle_insert(shared, request),
        ("POST", "/remove") => handle_remove(shared, request),
        ("POST", "/commit") => handle_commit(shared),
        ("POST", "/shutdown") => Outcome {
            status: 200,
            reason: "OK",
            body: Json::obj(vec![("status", Json::str("shutting down"))]),
            close_after: true,
        },
        (
            _,
            "/health" | "/stats" | "/query" | "/topk" | "/batch" | "/reload" | "/insert"
            | "/remove" | "/commit" | "/shutdown",
        ) => Outcome::error(405, "Method Not Allowed", "wrong method for this path"),
        (_, path) => Outcome::error(404, "Not Found", format!("no such endpoint: {path}")),
    };
    if outcome.status >= 400 {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    outcome
}

fn handle_health(shared: &Shared) -> Outcome {
    let snap = shared.engine.snapshot();
    Outcome::ok(Json::obj(vec![
        ("status", Json::str("ok")),
        ("domains", Json::uint(snap.container().len() as u64)),
        ("generation", Json::uint(snap.generation())),
        ("shards", Json::uint(snap.num_shards() as u64)),
        ("ranked", Json::Bool(snap.container().has_ranked())),
        ("cache_enabled", Json::Bool(shared.cache.capacity() > 0)),
    ]))
}

fn cache_json(stats: &CacheStats) -> Json {
    Json::obj(vec![
        ("capacity", Json::uint(stats.capacity as u64)),
        ("entries", Json::uint(stats.entries as u64)),
        ("hits", Json::uint(stats.hits)),
        ("misses", Json::uint(stats.misses)),
        ("hit_rate", Json::num(stats.hit_rate())),
    ])
}

fn handle_stats(shared: &Shared) -> Outcome {
    let snap = shared.engine.snapshot();
    let staged = shared.engine.staged_counts();
    let c = &shared.counters;
    let q = &shared.query_totals;
    Outcome::ok(Json::obj(vec![
        ("domains", Json::uint(snap.container().len() as u64)),
        ("num_perm", Json::uint(snap.container().num_perm() as u64)),
        (
            "partitions",
            Json::uint(snap.container().partition_count() as u64),
        ),
        ("shards", Json::uint(snap.num_shards() as u64)),
        ("generation", Json::uint(snap.generation())),
        ("threads", Json::uint(shared.threads as u64)),
        (
            "uptime_ms",
            Json::uint(shared.started.elapsed().as_millis() as u64),
        ),
        (
            "requests",
            Json::obj(vec![
                (
                    "connections",
                    Json::uint(c.connections.load(Ordering::Relaxed)),
                ),
                ("query", Json::uint(c.queries.load(Ordering::Relaxed))),
                ("topk", Json::uint(c.topk.load(Ordering::Relaxed))),
                ("batch", Json::uint(c.batches.load(Ordering::Relaxed))),
                (
                    "batch_queries",
                    Json::uint(c.batch_queries.load(Ordering::Relaxed)),
                ),
                ("reload", Json::uint(c.reloads.load(Ordering::Relaxed))),
                ("insert", Json::uint(c.inserts.load(Ordering::Relaxed))),
                ("remove", Json::uint(c.removes.load(Ordering::Relaxed))),
                ("commit", Json::uint(c.commits.load(Ordering::Relaxed))),
                ("errors", Json::uint(c.errors.load(Ordering::Relaxed))),
            ]),
        ),
        (
            "staged",
            Json::obj(vec![
                ("inserts", Json::uint(staged.inserts as u64)),
                ("removes", Json::uint(staged.removes as u64)),
            ]),
        ),
        // Heap accounting must cover the staged backlog too: uncommitted
        // inserts live outside every snapshot index, and a report that
        // only asked the index would under-count under live ingestion.
        (
            "memory",
            Json::obj(vec![
                (
                    "index_bytes",
                    Json::uint(snap.index().memory_bytes() as u64),
                ),
                (
                    "staged_bytes",
                    Json::uint(shared.engine.staged_memory_bytes() as u64),
                ),
            ]),
        ),
        ("cache", cache_json(&shared.cache.stats())),
        (
            "query_stats",
            Json::obj(vec![
                ("executed", Json::uint(q.executed.load(Ordering::Relaxed))),
                (
                    "partitions_probed",
                    Json::uint(q.partitions_probed.load(Ordering::Relaxed)),
                ),
                (
                    "candidates",
                    Json::uint(q.candidates.load(Ordering::Relaxed)),
                ),
                ("survivors", Json::uint(q.survivors.load(Ordering::Relaxed))),
                (
                    "wall_micros",
                    Json::uint(q.wall_micros.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ]))
}

/// One parsed query: sketch, cardinality, threshold, optional k, and the
/// opt-in per-query debug flag.
struct QuerySpec {
    signature: Signature,
    size: u64,
    threshold: f64,
    k: usize,
    debug: bool,
}

impl QuerySpec {
    /// The typed [`Query`] this spec describes.
    fn query(&self) -> Query<'_> {
        if self.k > 0 {
            Query::top_k(&self.signature, self.k).with_size(self.size)
        } else {
            Query::threshold(&self.signature, self.threshold).with_size(self.size)
        }
    }
}

/// One request object parsed up to (but not including) sketching: the
/// query domain plus its options. The batch path parses every item to
/// this form first, then sketches all the valid ones in one
/// [`bulk_signatures`](lshe_minhash::MinHasher::bulk_signatures) pass.
struct ParsedItem {
    domain: Domain,
    threshold: f64,
    k: usize,
    debug: bool,
}

impl ParsedItem {
    fn into_spec(self, signature: Signature) -> QuerySpec {
        QuerySpec {
            size: self.domain.len() as u64,
            signature,
            threshold: self.threshold,
            k: self.k,
            debug: self.debug,
        }
    }
}

/// Parses a request object: `values` (required string array, hashed
/// server-side into the index's hash universe), plus optional
/// `threshold`, `k`, and `debug`. A present `k` always means top-k — on
/// `/query`, `/topk`, and `/batch` entries alike; `require_k` only makes
/// it mandatory (`/topk`).
fn parse_item(body: &Json, require_k: bool) -> Result<ParsedItem, String> {
    let values = body
        .get("values")
        .and_then(Json::as_array)
        .ok_or("missing \"values\": expected an array of strings")?;
    if values.is_empty() {
        return Err("\"values\" must not be empty".to_owned());
    }
    let mut strs = Vec::with_capacity(values.len());
    for v in values {
        strs.push(v.as_str().ok_or("\"values\" entries must all be strings")?);
    }
    let domain = Domain::from_strs(strs.iter().copied());
    let threshold = match body.get("threshold") {
        None => DEFAULT_THRESHOLD,
        Some(t) => t
            .as_f64()
            .filter(|t| (0.0..=1.0).contains(t))
            .ok_or("\"threshold\" must be a number in [0, 1]")?,
    };
    let k = match body.get("k") {
        None if require_k => return Err("missing \"k\": top-k needs a positive integer".to_owned()),
        None => 0,
        Some(k) => k
            .as_u64()
            .filter(|&k| (1..=MAX_K as u64).contains(&k))
            .ok_or_else(|| format!("\"k\" must be an integer in [1, {MAX_K}]"))?
            as usize,
    };
    let debug = match body.get("debug") {
        None => false,
        Some(d) => d.as_bool().ok_or("\"debug\" must be a boolean")?,
    };
    Ok(ParsedItem {
        domain,
        threshold,
        k,
        debug,
    })
}

/// Parse + sketch in one step — the single-query (`/query`, `/topk`)
/// path.
fn parse_spec(body: &Json, snap: &Snapshot, require_k: bool) -> Result<QuerySpec, String> {
    let item = parse_item(body, require_k)?;
    let signature = item.domain.signature(snap.hasher());
    Ok(item.into_spec(signature))
}

/// Runs one query through the LRU cache: hit → stored outcome, miss →
/// dispatch through the snapshot's `dyn DomainIndex` and insert. The
/// snapshot generation is part of the key, so reloads can never serve
/// stale hits. Only executed (non-cached) searches feed the aggregated
/// [`QueryStatTotals`].
/// The cache key for a spec against one snapshot generation: the full
/// response-shaping tuple (digest, size, mode, `debug`).
fn cache_key(spec: &QuerySpec, generation: u64) -> QueryKey {
    QueryKey {
        digest: signature_digest(spec.signature.slots()),
        query_size: spec.size,
        // Top-k ignores the threshold entirely; canonicalise it to 0 so
        // identical top-k requests with different (unused) thresholds
        // share one cache entry.
        threshold_bits: if spec.k > 0 {
            0
        } else {
            spec.threshold.to_bits()
        },
        k: spec.k as u32,
        debug: spec.debug,
        generation,
    }
}

fn cached_search(
    shared: &Shared,
    snap: &Snapshot,
    spec: &QuerySpec,
) -> Result<(Arc<SearchOutcome>, bool), String> {
    let key = cache_key(spec, snap.generation());
    if let Some(outcome) = shared.cache.get(&key) {
        return Ok((outcome, true));
    }
    let outcome = snap.query(&spec.query()).map_err(|e| e.to_string())?;
    shared.query_totals.record(&outcome.stats);
    let outcome = Arc::new(outcome);
    shared.cache.insert(key, Arc::clone(&outcome));
    Ok((outcome, false))
}

/// Renders a hit list with provenance.
fn hits_json(snap: &Snapshot, hits: &[SearchHit]) -> Json {
    Json::Arr(
        hits.iter()
            .map(|&SearchHit { id, estimate }| {
                let (table, column, size) = snap
                    .container()
                    .record(id)
                    .map(|r| (r.table.as_str(), r.column.as_str(), r.size))
                    .unwrap_or(("?", "?", 0));
                Json::obj(vec![
                    ("id", Json::uint(u64::from(id))),
                    ("table", Json::str(table)),
                    ("column", Json::str(column)),
                    ("size", Json::uint(size)),
                    ("estimate", estimate.map_or(Json::Null, Json::num)),
                ])
            })
            .collect(),
    )
}

/// Renders one query's [`QueryStats`] (the opt-in `"debug"` field).
fn debug_json(stats: &QueryStats) -> Json {
    Json::obj(vec![
        (
            "partitions_probed",
            Json::uint(stats.partitions_probed as u64),
        ),
        (
            "partitions_total",
            Json::uint(stats.partitions_total as u64),
        ),
        ("candidates", Json::uint(stats.candidates as u64)),
        ("survivors", Json::uint(stats.survivors as u64)),
        ("wall_micros", Json::uint(stats.wall_micros)),
    ])
}

fn parse_body(request: &Request) -> Result<Json, String> {
    let text = std::str::from_utf8(&request.body).map_err(|_| "body is not UTF-8".to_owned())?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    Json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))
}

fn handle_query(shared: &Shared, request: &Request, require_k: bool) -> Outcome {
    let started = Instant::now();
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let snap = shared.engine.snapshot();
    let spec = match parse_spec(&body, &snap, require_k) {
        Ok(spec) => spec,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let (outcome, cached) = match cached_search(shared, &snap, &spec) {
        Ok(r) => r,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    if spec.k > 0 {
        shared.counters.topk.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    }
    let mut fields = vec![
        ("count", Json::uint(outcome.hits.len() as u64)),
        ("cached", Json::Bool(cached)),
        ("generation", Json::uint(snap.generation())),
        (
            "query_time_us",
            Json::uint(started.elapsed().as_micros() as u64),
        ),
        ("hits", hits_json(&snap, &outcome.hits)),
    ];
    if spec.debug {
        fields.push(("debug", debug_json(&outcome.stats)));
    }
    Outcome::ok(Json::obj(fields))
}

fn handle_batch(shared: &Shared, request: &Request) -> Outcome {
    let started = Instant::now();
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let Some(queries) = body.get("queries").and_then(Json::as_array) else {
        return Outcome::error(400, "Bad Request", "missing \"queries\": expected an array");
    };
    if queries.is_empty() {
        return Outcome::error(400, "Bad Request", "\"queries\" must not be empty");
    }
    if queries.len() > MAX_BATCH {
        return Outcome::error(
            400,
            "Bad Request",
            format!("at most {MAX_BATCH} queries per batch"),
        );
    }
    // Every query in the batch runs against ONE snapshot: a concurrent
    // reload cannot split the batch across index generations.
    let snap = shared.engine.snapshot();

    // Phase 1 — parse every item. A malformed item becomes a typed error
    // pinned to its position; it can never fail the batch or shift the
    // answers of its neighbours.
    let parsed: Vec<Result<ParsedItem, String>> =
        queries.iter().map(|q| parse_item(q, false)).collect();

    // Phase 2 — sketch all well-formed items in one bulk pass (shared
    // hash scratch, worker lanes spawned once for the batch).
    let sets: Vec<&[u64]> = parsed
        .iter()
        .filter_map(|p| p.as_ref().ok().map(|item| item.domain.hashes()))
        .collect();
    let mut signatures = snap.hasher().bulk_signatures(&sets).into_iter();
    let specs: Vec<Result<QuerySpec, String>> = parsed
        .into_iter()
        .map(|p| {
            p.map(|item| {
                let sig = signatures.next().expect("one signature per parsed item");
                item.into_spec(sig)
            })
        })
        .collect();

    // Phase 3 — consult the cache per item; collect the misses. Identical
    // uncached entries within one batch dispatch ONCE: later duplicates
    // borrow the first occurrence's answer (and report `cached`, exactly
    // as they would have under sequential execution).
    let mut slots: Vec<Option<(Arc<SearchOutcome>, bool)>> = vec![None; specs.len()];
    let mut errors: Vec<Option<String>> = specs.iter().map(|s| s.as_ref().err().cloned()).collect();
    let mut miss_positions: Vec<usize> = Vec::new();
    let mut first_miss: std::collections::HashMap<QueryKey, usize> =
        std::collections::HashMap::new();
    let mut duplicate_of: Vec<Option<usize>> = vec![None; specs.len()];
    for (i, spec) in specs.iter().enumerate() {
        let Ok(spec) = spec else { continue };
        let key = cache_key(spec, snap.generation());
        // The duplicate check comes FIRST so a duplicate never counts a
        // cache miss it did not cause: its hit is recorded when it reads
        // the first occurrence's freshly inserted entry below, exactly
        // the hit/miss accounting sequential execution would produce.
        if let Some(&first) = first_miss.get(&key) {
            duplicate_of[i] = Some(first);
        } else if let Some(outcome) = shared.cache.get(&key) {
            slots[i] = Some((outcome, true));
        } else {
            first_miss.insert(key, i);
            miss_positions.push(i);
        }
    }

    // Phase 4 — ONE batched dispatch for every miss: the backend
    // amortizes partition/shard probing and fan-out across the whole
    // batch instead of paying per query.
    let miss_queries: Vec<lshe_core::Query<'_>> = miss_positions
        .iter()
        .map(|&i| specs[i].as_ref().expect("miss positions are valid").query())
        .collect();
    let outcomes = snap.index().search_batch(&miss_queries);
    for (&i, result) in miss_positions.iter().zip(outcomes) {
        match result {
            Ok(outcome) => {
                shared.query_totals.record(&outcome.stats);
                let outcome = Arc::new(outcome);
                let spec = specs[i].as_ref().expect("valid spec");
                shared
                    .cache
                    .insert(cache_key(spec, snap.generation()), Arc::clone(&outcome));
                slots[i] = Some((outcome, false));
            }
            // Per-item query errors (e.g. top-k against an unranked
            // index) stay in position, exactly like parse errors.
            Err(e) => errors[i] = Some(e.to_string()),
        }
    }
    // Duplicates of a dispatched miss share its answer (or its error),
    // flagged `cached` as they would be under sequential execution. The
    // answer is read back through the cache so the hit counters reflect
    // it (falling back to the first slot's Arc if an eviction already
    // raced it out).
    for (i, first) in duplicate_of.into_iter().enumerate() {
        let Some(first) = first else { continue };
        if let Some((outcome, _)) = &slots[first] {
            let spec = specs[i].as_ref().expect("duplicates parsed");
            let replay = shared
                .cache
                .get(&cache_key(spec, snap.generation()))
                .unwrap_or_else(|| Arc::clone(outcome));
            slots[i] = Some((replay, true));
        } else {
            errors[i] = errors[first].clone();
        }
    }

    // Phase 5 — render in request order.
    let rendered: Vec<Json> = slots
        .into_iter()
        .zip(errors)
        .zip(&specs)
        .map(|((slot, error), spec)| match (slot, error) {
            (_, Some(msg)) => Json::obj(vec![("error", Json::str(msg))]),
            (Some((outcome, cached)), None) => {
                let spec = spec.as_ref().expect("answered items parsed");
                let mut fields = vec![
                    ("count", Json::uint(outcome.hits.len() as u64)),
                    ("cached", Json::Bool(cached)),
                    ("hits", hits_json(&snap, &outcome.hits)),
                ];
                if spec.debug {
                    fields.push(("debug", debug_json(&outcome.stats)));
                }
                Json::obj(fields)
            }
            (None, None) => unreachable!("every item is answered or errored"),
        })
        .collect();
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .batch_queries
        .fetch_add(rendered.len() as u64, Ordering::Relaxed);
    Outcome::ok(Json::obj(vec![
        ("count", Json::uint(rendered.len() as u64)),
        ("generation", Json::uint(snap.generation())),
        (
            "batch_time_us",
            Json::uint(started.elapsed().as_micros() as u64),
        ),
        ("results", Json::Arr(rendered)),
    ]))
}

fn handle_reload(shared: &Shared, request: &Request) -> Outcome {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let path = body.get("path").and_then(Json::as_str).map(Path::new);
    match shared.engine.reload(path) {
        Ok(snap) => {
            // Entries are generation-keyed (never stale), but a reload makes
            // the old generation unreachable: drop the dead weight.
            shared.cache.clear();
            shared.counters.reloads.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(Json::obj(vec![
                ("status", Json::str("reloaded")),
                ("generation", Json::uint(snap.generation())),
                ("domains", Json::uint(snap.container().len() as u64)),
                ("shards", Json::uint(snap.num_shards() as u64)),
            ]))
        }
        Err(EngineError::Io(e)) => Outcome::error(400, "Bad Request", format!("i/o error: {e}")),
        Err(e) => Outcome::error(400, "Bad Request", e.to_string()),
    }
}

/// `POST /insert`: stage one domain for live ingestion. The body carries
/// the domain's `values` (hashed server-side, exactly like `/query`) plus
/// optional `table`/`column` provenance. The domain becomes queryable on
/// the next `/commit`; until then `/stats` reports it under `staged`.
fn handle_insert(shared: &Shared, request: &Request) -> Outcome {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let Some(values) = body.get("values").and_then(Json::as_array) else {
        return Outcome::error(
            400,
            "Bad Request",
            "missing \"values\": expected an array of strings",
        );
    };
    if values.is_empty() {
        return Outcome::error(400, "Bad Request", "\"values\" must not be empty");
    }
    let mut strs = Vec::with_capacity(values.len());
    for v in values {
        match v.as_str() {
            Some(s) => strs.push(s),
            None => {
                return Outcome::error(400, "Bad Request", "\"values\" entries must all be strings")
            }
        }
    }
    let table = match body.get("table") {
        None => "ingest".to_owned(),
        Some(t) => match t.as_str() {
            Some(t) => t.to_owned(),
            None => return Outcome::error(400, "Bad Request", "\"table\" must be a string"),
        },
    };
    let column = match body.get("column") {
        None => "col".to_owned(),
        Some(c) => match c.as_str() {
            Some(c) => c.to_owned(),
            None => return Outcome::error(400, "Bad Request", "\"column\" must be a string"),
        },
    };
    let domain = Domain::from_strs(strs.iter().copied());
    let snap = shared.engine.snapshot();
    let signature = domain.signature(snap.hasher());
    match shared
        .engine
        .stage_insert(table, column, domain.len() as u64, signature)
    {
        Ok((id, staged)) => {
            shared.counters.inserts.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(Json::obj(vec![
                ("status", Json::str("staged")),
                ("id", Json::uint(u64::from(id))),
                ("size", Json::uint(domain.len() as u64)),
                ("staged_inserts", Json::uint(staged.inserts as u64)),
                ("staged_removes", Json::uint(staged.removes as u64)),
            ]))
        }
        Err(EngineError::Io(e)) => {
            Outcome::error(500, "Internal Server Error", format!("delta log: {e}"))
        }
        Err(e) => Outcome::error(400, "Bad Request", e.to_string()),
    }
}

/// `POST /remove`: stage the removal of a domain by id. Takes effect on
/// the next `/commit`; double-removal and unknown ids are 400s.
fn handle_remove(shared: &Shared, request: &Request) -> Outcome {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(msg) => return Outcome::error(400, "Bad Request", msg),
    };
    let Some(id) = body.get("id").and_then(Json::as_u64) else {
        return Outcome::error(400, "Bad Request", "missing \"id\": expected an integer");
    };
    let Ok(id) = u32::try_from(id) else {
        return Outcome::error(400, "Bad Request", "\"id\" out of range");
    };
    match shared.engine.stage_remove(id) {
        Ok(staged) => {
            shared.counters.removes.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(Json::obj(vec![
                ("status", Json::str("staged")),
                ("id", Json::uint(u64::from(id))),
                ("staged_inserts", Json::uint(staged.inserts as u64)),
                ("staged_removes", Json::uint(staged.removes as u64)),
            ]))
        }
        Err(EngineError::Io(e)) => {
            Outcome::error(500, "Internal Server Error", format!("delta log: {e}"))
        }
        Err(e) => Outcome::error(400, "Bad Request", e.to_string()),
    }
}

/// `POST /commit`: apply every staged mutation as one new snapshot
/// generation (copy-on-write: in-flight queries keep their snapshot), and
/// persist the result. Idempotent when nothing is staged.
fn handle_commit(shared: &Shared) -> Outcome {
    match shared.engine.commit_staged() {
        Ok((snap, outcome)) => {
            if outcome.applied > 0 {
                // Entries are generation-keyed (never stale), but the old
                // generation is unreachable now: drop the dead weight.
                shared.cache.clear();
                shared.counters.commits.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::ok(Json::obj(vec![
                (
                    "status",
                    Json::str(if outcome.applied > 0 {
                        "committed"
                    } else {
                        "nothing staged"
                    }),
                ),
                ("applied", Json::uint(outcome.applied as u64)),
                ("merged", Json::uint(outcome.report.merged as u64)),
                ("rebalanced", Json::Bool(outcome.report.rebalanced)),
                ("generation", Json::uint(snap.generation())),
                ("domains", Json::uint(snap.container().len() as u64)),
            ]))
        }
        Err(EngineError::Io(e)) => {
            Outcome::error(500, "Internal Server Error", format!("persist: {e}"))
        }
        Err(e) => Outcome::error(400, "Bad Request", e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::container::IndexContainer;
    use lshe_corpus::{Catalog, DomainMeta};

    fn test_engine(n: usize, ranked: bool) -> Arc<Engine> {
        let mut cat = Catalog::new();
        for k in 0..n {
            let values: Vec<String> = (0..20 + 5 * k).map(|i| format!("v{i}")).collect();
            cat.push(
                Domain::from_strs(values.iter().map(String::as_str)),
                DomainMeta::new(format!("t{k}"), "col"),
            );
        }
        Arc::new(Engine::from_container(IndexContainer::build(&cat, 2, ranked), 1).expect("engine"))
    }

    fn boot(engine: Arc<Engine>) -> ServerHandle {
        start(
            engine,
            &ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 2,
                cache_capacity: 16,
            },
        )
        .expect("bind")
    }

    /// Fresh-connection request helpers over the shared loopback client.
    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        HttpClient::connect(addr).request("GET", path, None)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        HttpClient::connect(addr).request("POST", path, Some(body))
    }

    #[test]
    fn health_and_stats_shape() {
        let server = boot(test_engine(6, true));
        let (status, body) = get(server.addr(), "/health");
        assert_eq!(status, 200, "{body}");
        let health = Json::parse(&body).expect("json");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("domains").and_then(Json::as_u64), Some(6));

        let (status, body) = get(server.addr(), "/stats");
        assert_eq!(status, 200);
        let stats = Json::parse(&body).expect("json");
        assert!(stats.get("cache").is_some());
        assert!(stats.get("requests").is_some());
        server.shutdown();
    }

    #[test]
    fn query_topk_and_cache_flow() {
        let server = boot(test_engine(6, true));
        let q = r#"{"values": ["v0","v1","v2","v3","v4","v5","v6","v7","v8","v9","v10","v11","v12","v13","v14","v15","v16","v17","v18","v19"], "threshold": 0.6}"#;
        let (status, body) = post(server.addr(), "/query", q);
        assert_eq!(status, 200, "{body}");
        let first = Json::parse(&body).expect("json");
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        assert!(first.get("count").and_then(Json::as_u64).expect("count") >= 1);

        // Same query again: served from cache.
        let (_, body) = post(server.addr(), "/query", q);
        let second = Json::parse(&body).expect("json");
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(first.get("hits"), second.get("hits"));

        let (status, body) = post(
            server.addr(),
            "/topk",
            r#"{"values": ["v0","v1","v2","v3","v4"], "k": 3}"#,
        );
        assert_eq!(status, 200, "{body}");
        let topk = Json::parse(&body).expect("json");
        assert_eq!(topk.get("count").and_then(Json::as_u64), Some(3));

        // A `k` on /query runs as top-k too (same semantics as a /batch
        // entry with `k`), never silently ignored.
        let (status, body) = post(
            server.addr(),
            "/query",
            r#"{"values": ["v0","v1","v2","v3","v4"], "k": 3}"#,
        );
        assert_eq!(status, 200, "{body}");
        let via_query = Json::parse(&body).expect("json");
        assert_eq!(via_query.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(via_query.get("hits"), topk.get("hits"));
        server.shutdown();
    }

    #[test]
    fn bad_requests_are_4xx_not_disconnects() {
        let server = boot(test_engine(4, false));
        let addr = server.addr();
        for (path, body) in [
            ("/query", "not json"),
            ("/query", "{}"),
            ("/query", r#"{"values": []}"#),
            ("/query", r#"{"values": [1, 2]}"#),
            ("/query", r#"{"values": ["a"], "threshold": 7}"#),
            ("/topk", r#"{"values": ["a"]}"#),
            ("/topk", r#"{"values": ["a"], "k": 0}"#),
            ("/batch", "{}"),
            ("/batch", r#"{"queries": []}"#),
        ] {
            let (status, response) = post(addr, path, body);
            assert_eq!(status, 400, "{path} {body} -> {response}");
        }
        // Top-k against an unranked index is a client error, not a crash.
        let (status, response) = post(addr, "/topk", r#"{"values": ["a","b"], "k": 2}"#);
        assert_eq!(status, 400, "{response}");
        // Unknown path / wrong method.
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/query").0, 405);
        server.shutdown();
    }

    #[test]
    fn debug_field_and_query_stat_aggregation() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let q = r#"{"values": ["v0","v1","v2","v3","v4","v5","v6","v7","v8","v9"], "threshold": 0.5, "debug": true}"#;
        let (status, body) = post(addr, "/query", q);
        assert_eq!(status, 200, "{body}");
        let first = Json::parse(&body).expect("json");
        let debug = first.get("debug").expect("debug object requested");
        let probed = debug
            .get("partitions_probed")
            .and_then(Json::as_u64)
            .expect("probed");
        let total = debug
            .get("partitions_total")
            .and_then(Json::as_u64)
            .expect("total");
        let candidates = debug.get("candidates").and_then(Json::as_u64).expect("c");
        let survivors = debug.get("survivors").and_then(Json::as_u64).expect("s");
        assert!(probed <= total, "{debug}");
        assert!(candidates >= survivors, "{debug}");
        assert_eq!(
            survivors,
            first.get("count").and_then(Json::as_u64).expect("count")
        );
        assert!(debug.get("wall_micros").and_then(Json::as_u64).is_some());

        // The cached replay returns the same stored stats.
        let (_, body) = post(addr, "/query", q);
        let second = Json::parse(&body).expect("json");
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(second.get("debug"), first.get("debug"));

        // Without the flag the field is absent.
        let (_, body) = post(
            addr,
            "/query",
            r#"{"values": ["v0","v1","v2"], "threshold": 0.5}"#,
        );
        assert!(Json::parse(&body).expect("json").get("debug").is_none());

        // A non-boolean debug flag is a 400.
        let (status, _) = post(addr, "/query", r#"{"values": ["v0"], "debug": 1}"#);
        assert_eq!(status, 400);

        // /stats aggregates executed-query counters; the cache hit is not
        // double counted (2 distinct searches ran: the debug one + the
        // 3-value one).
        let (_, body) = get(addr, "/stats");
        let stats = Json::parse(&body).expect("json");
        let totals = stats.get("query_stats").expect("query_stats");
        assert_eq!(totals.get("executed").and_then(Json::as_u64), Some(2));
        let agg_probed = totals
            .get("partitions_probed")
            .and_then(Json::as_u64)
            .expect("agg");
        assert!(agg_probed >= probed, "{totals}");
        assert!(
            totals.get("candidates").and_then(Json::as_u64).expect("c")
                >= totals.get("survivors").and_then(Json::as_u64).expect("s")
        );
        server.shutdown();
    }

    #[test]
    fn batch_fans_out_and_keeps_order() {
        let server = boot(test_engine(8, true));
        let queries: Vec<String> = (0..8)
            .map(|k| {
                let values: Vec<String> = (0..20 + 5 * k).map(|i| format!("\"v{i}\"")).collect();
                format!("{{\"values\": [{}], \"threshold\": 0.9}}", values.join(","))
            })
            .collect();
        let body = format!("{{\"queries\": [{}]}}", queries.join(","));
        let (status, response) = post(server.addr(), "/batch", &body);
        assert_eq!(status, 200, "{response}");
        let parsed = Json::parse(&response).expect("json");
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(8));
        let results = parsed.get("results").and_then(Json::as_array).expect("arr");
        // Query k is exactly domain k's value set: its own table must hit,
        // in order.
        for (k, result) in results.iter().enumerate() {
            let hits = result.get("hits").and_then(Json::as_array).expect("hits");
            assert!(
                hits.iter().any(|h| {
                    h.get("table").and_then(Json::as_str) == Some(format!("t{k}").as_str())
                }),
                "batch entry {k} missing self hit: {result}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn batch_partial_failures_stay_in_position() {
        // Hostile input: one malformed item must neither fail the batch
        // nor shift its neighbours — every item answers (or errors) in
        // its own position, with a typed message.
        let server = boot(test_engine(6, false)); // unranked: top-k items must error too
        let body = r#"{"queries": [
            {"values": ["v0","v1","v2","v3","v4"], "threshold": 0.5},
            {"values": []},
            {"values": [1, 2]},
            {"values": ["v0"], "threshold": 7},
            {"values": ["v0","v1"], "k": 2},
            {"values": ["v0"], "k": 0},
            {"values": ["v0"], "debug": 1},
            "not an object",
            {"values": ["v0","v1","v2","v3","v4"], "threshold": 0.5}
        ]}"#;
        let (status, response) = post(server.addr(), "/batch", body);
        assert_eq!(status, 200, "{response}");
        let parsed = Json::parse(&response).expect("json");
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(9));
        let results = parsed.get("results").and_then(Json::as_array).expect("arr");
        // Items 0 and 8 are valid and identical: both answer with hits.
        for &i in &[0usize, 8] {
            assert!(
                results[i].get("error").is_none(),
                "item {i}: {}",
                results[i]
            );
            assert!(
                results[i].get("hits").and_then(Json::as_array).is_some(),
                "item {i} lost its answer: {}",
                results[i]
            );
        }
        assert_eq!(results[0].get("hits"), results[8].get("hits"));
        // Identical uncached entries dispatch once: the duplicate borrows
        // the first occurrence's answer and reports it as cached.
        assert_eq!(results[0].get("cached"), Some(&Json::Bool(false)));
        assert_eq!(results[8].get("cached"), Some(&Json::Bool(true)));
        // Every hostile item carries its own typed error, in position.
        for (i, needle) in [
            (1usize, "must not be empty"),
            (2, "strings"),
            (3, "threshold"),
            (4, "top-k"),
            (5, "\"k\""),
            (6, "debug"),
            (7, "values"),
        ] {
            let msg = results[i]
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("item {i} should error: {}", results[i]));
            assert!(msg.contains(needle), "item {i}: {msg:?} missing {needle:?}");
            assert!(results[i].get("hits").is_none(), "item {i} answered anyway");
        }
        server.shutdown();
    }

    #[test]
    fn cache_key_includes_debug_flag() {
        // A cached non-debug response must never answer a debug request,
        // and vice versa — the flag is part of the cache key.
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let plain = r#"{"values": ["v0","v1","v2","v3","v4","v5"], "threshold": 0.5}"#;
        let debug =
            r#"{"values": ["v0","v1","v2","v3","v4","v5"], "threshold": 0.5, "debug": true}"#;

        let (_, body) = post(addr, "/query", plain);
        let first = Json::parse(&body).expect("json");
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        assert!(first.get("debug").is_none());

        // Same query with debug: a separate cache entry, never the plain
        // one replayed without its stats.
        let (_, body) = post(addr, "/query", debug);
        let second = Json::parse(&body).expect("json");
        assert_eq!(second.get("cached"), Some(&Json::Bool(false)), "{second}");
        assert!(second.get("debug").is_some(), "debug stats missing");

        // Each variant now replays from its own entry.
        let (_, body) = post(addr, "/query", debug);
        let replay = Json::parse(&body).expect("json");
        assert_eq!(replay.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(replay.get("debug"), second.get("debug"));
        let (_, body) = post(addr, "/query", plain);
        let replay = Json::parse(&body).expect("json");
        assert_eq!(replay.get("cached"), Some(&Json::Bool(true)));
        assert!(replay.get("debug").is_none(), "debug leaked into plain");
        server.shutdown();
    }

    #[test]
    fn stats_memory_covers_staged_backlog() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();
        let memory = |addr| {
            let (_, body) = get(addr, "/stats");
            let stats = Json::parse(&body).expect("json");
            let m = stats.get("memory").expect("memory object").clone();
            (
                m.get("index_bytes").and_then(Json::as_u64).expect("index"),
                m.get("staged_bytes")
                    .and_then(Json::as_u64)
                    .expect("staged"),
            )
        };
        let (index_bytes, staged_bytes) = memory(addr);
        assert!(index_bytes > 0);
        assert_eq!(staged_bytes, 0);

        // Staging an insert grows the backlog accounting (the signature
        // alone is num_perm × 8 bytes).
        let values: Vec<String> = (0..24).map(|i| format!("\"m{i}\"")).collect();
        let (status, body) = post(
            addr,
            "/insert",
            &format!("{{\"values\": [{}]}}", values.join(",")),
        );
        assert_eq!(status, 200, "{body}");
        let (_, staged_after_insert) = memory(addr);
        assert!(
            staged_after_insert >= 256 * 8,
            "staged backlog under-reported: {staged_after_insert}"
        );

        // Commit folds the backlog into the index: staged accounting
        // drops back to zero.
        let (status, _) = post(addr, "/commit", "");
        assert_eq!(status, 200);
        let (index_after, staged_after_commit) = memory(addr);
        assert_eq!(staged_after_commit, 0);
        assert!(index_after > 0);
        server.shutdown();
    }

    #[test]
    fn insert_remove_commit_endpoints() {
        let server = boot(test_engine(6, true));
        let addr = server.addr();

        // Stage an insert; not yet visible.
        let values: Vec<String> = (0..30).map(|i| format!("\"w{i}\"")).collect();
        let insert_body = format!(
            "{{\"values\": [{}], \"table\": \"live\", \"column\": \"c\"}}",
            values.join(",")
        );
        let (status, body) = post(addr, "/insert", &insert_body);
        assert_eq!(status, 200, "{body}");
        let staged = Json::parse(&body).expect("json");
        assert_eq!(staged.get("status").and_then(Json::as_str), Some("staged"));
        assert_eq!(staged.get("id").and_then(Json::as_u64), Some(6));
        let query_body = format!("{{\"values\": [{}], \"threshold\": 0.9}}", values.join(","));
        let (_, pre) = post(addr, "/query", &query_body);
        let pre = Json::parse(&pre).expect("json");
        assert_eq!(pre.get("count").and_then(Json::as_u64), Some(0));

        // Stage a remove; /stats shows both.
        let (status, body) = post(addr, "/remove", r#"{"id": 2}"#);
        assert_eq!(status, 200, "{body}");
        let (_, stats) = get(addr, "/stats");
        let stats = Json::parse(&stats).expect("json");
        let s = stats.get("staged").expect("staged");
        assert_eq!(s.get("inserts").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("removes").and_then(Json::as_u64), Some(1));

        // Bad mutations are 400s.
        assert_eq!(post(addr, "/remove", r#"{"id": 2}"#).0, 400, "double");
        assert_eq!(post(addr, "/remove", r#"{"id": 999}"#).0, 400, "unknown");
        assert_eq!(post(addr, "/remove", "{}").0, 400);
        assert_eq!(post(addr, "/insert", r#"{"values": []}"#).0, 400);
        assert_eq!(post(addr, "/insert", r#"{"values": [3]}"#).0, 400);
        assert_eq!(get(addr, "/commit").0, 405);

        // Commit: new generation, insert visible, removed id gone.
        let (status, body) = post(addr, "/commit", "");
        assert_eq!(status, 200, "{body}");
        let committed = Json::parse(&body).expect("json");
        assert_eq!(
            committed.get("status").and_then(Json::as_str),
            Some("committed")
        );
        assert_eq!(committed.get("applied").and_then(Json::as_u64), Some(2));
        assert_eq!(committed.get("generation").and_then(Json::as_u64), Some(2));
        assert_eq!(committed.get("domains").and_then(Json::as_u64), Some(6));
        let (_, post_commit) = post(addr, "/query", &query_body);
        let post_commit = Json::parse(&post_commit).expect("json");
        assert_eq!(
            post_commit.get("cached"),
            Some(&Json::Bool(false)),
            "new generation must not serve the stale cached answer"
        );
        let hits = post_commit
            .get("hits")
            .and_then(Json::as_array)
            .expect("hits");
        assert!(
            hits.iter()
                .any(|h| h.get("id").and_then(Json::as_u64) == Some(6)
                    && h.get("table").and_then(Json::as_str) == Some("live")),
            "{post_commit}"
        );

        // Idempotent empty commit.
        let (status, body) = post(addr, "/commit", "");
        assert_eq!(status, 200);
        assert_eq!(
            Json::parse(&body)
                .expect("json")
                .get("status")
                .and_then(Json::as_str),
            Some("nothing staged")
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_server() {
        let server = boot(test_engine(4, false));
        let addr = server.addr();
        let (status, body) = post(addr, "/shutdown", "");
        assert_eq!(status, 200, "{body}");
        server.join();
        // The listener is gone: new connections must fail (allow the OS a
        // moment to tear the socket down).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
