//! # lshe-serve
//!
//! The serving layer the paper's "Internet-scale domain search" framing
//! calls for (§6.3 runs a 262M-domain deployment): a long-lived,
//! concurrent query server over a persisted `.lshe` index.
//!
//! Everything is `std`-only — the build image has no crates.io access —
//! so the crate hand-rolls the pieces a production server normally pulls
//! off the shelf:
//!
//! | module | role |
//! |---|---|
//! | [`container`] | the `.lshe` index-file format (moved here from `lshe-cli` so both the CLI and the server share it) |
//! | [`engine`] | `Arc`-swapped snapshot reads + hot `/reload`, optional sharded fan-out |
//! | [`cache`] | thread-safe LRU query cache with hit/miss counters |
//! | [`pool`] | fixed thread pool (the reactor's compute lanes) with drain-on-drop graceful shutdown |
//! | [`http`] | minimal HTTP/1.1 parsing — incremental/resumable over partial reads — and response writing |
//! | [`json`] | strict-subset JSON reader/writer for the wire protocol, with render-into-buffer reuse |
//! | [`maintenance`] | the background maintenance runtime: a parked thread executing leveled/tiered merge plans off the request path |
//! | [`poller`] | readiness polling (epoll on Linux, `poll(2)` elsewhere) via std-linked libc symbols |
//! | [`server`] | configuration, routing, endpoints |
//! | `reactor` (internal) | the event loop: non-blocking listener + connections, pipelined in-order responses |
//!
//! ## Quick example
//!
//! ```
//! use lshe_serve::container::IndexContainer;
//! use lshe_serve::engine::Engine;
//! use lshe_serve::server::{start, ServerConfig};
//! use lshe_corpus::{Catalog, Domain, DomainMeta};
//! use std::sync::Arc;
//!
//! // Build a tiny in-memory index…
//! let mut catalog = Catalog::new();
//! for k in 0..4 {
//!     let values: Vec<String> = (0..=20 + 10 * k).map(|i| format!("v{i}")).collect();
//!     catalog.push(
//!         Domain::from_strs(values.iter().map(String::as_str)),
//!         DomainMeta::new(format!("table{k}"), "col"),
//!     );
//! }
//! let engine = Engine::from_container(IndexContainer::build(&catalog, 2, true), 1).unwrap();
//!
//! // …serve it on an ephemeral port, then shut down gracefully.
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     threads: 2,
//!     cache_capacity: 64,
//!     ..ServerConfig::default()
//! };
//! let handle = start(Arc::new(engine), &config).unwrap();
//! assert_ne!(handle.addr().port(), 0);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod client;
pub mod container;
pub mod engine;
pub mod http;
pub mod json;
pub mod maintenance;
pub mod poller;
pub mod pool;
mod reactor;
pub mod server;

pub use cache::{CacheStats, LruCache, QueryKey};
pub use container::{DeltaError, DeltaLog, DeltaOp, DomainRecord, IndexContainer, IndexKind};
pub use engine::{CommitOutcome, Engine, EngineError, Snapshot, StagedCounts};
pub use maintenance::{FullMergeSummary, Maintainer, MaintenanceConfig, MaintenanceStats};
pub use server::{start, ServerConfig, ServerHandle};
