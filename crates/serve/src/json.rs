//! Minimal JSON reader/writer for the serve protocol.
//!
//! The build image has no crates.io access, so — like the codec layer in
//! `lshe-minhash` — the wire format is hand-rolled over `std`. This is a
//! strict subset of RFC 8259 sufficient for the server's request bodies
//! and responses: objects, arrays, strings (with `\uXXXX` escapes,
//! including surrogate pairs), `f64` numbers, booleans, and `null`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: a message and the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: protects the recursive-descent parser's stack from
/// adversarial inputs like `[[[[…`.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    /// [`JsonError`] with a byte offset on any syntax violation.
    pub fn parse(input: &str) -> Result<Self, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, when exactly
    /// representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Self {
        Self::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience constructor for a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Self::Str(s.into())
    }

    /// Convenience constructor for a number.
    #[must_use]
    pub fn num(n: impl Into<f64>) -> Self {
        Self::Num(n.into())
    }

    /// A `u64` rendered as a JSON number. Values above 2⁵³ would lose
    /// precision in the `f64` carrier, so they are rendered as strings —
    /// the same convention big-integer-safe APIs use.
    #[must_use]
    pub fn uint(n: u64) -> Self {
        if n <= (1u64 << 53) {
            Self::Num(n as f64)
        } else {
            Self::Str(n.to_string())
        }
    }

    /// Serialises the value to compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialises the value to compact JSON text appended to `out`,
    /// reusing the buffer's capacity — the server renders every response
    /// body through this into per-connection write buffers, so a hot
    /// keep-alive connection stops paying a fresh `String` per response.
    /// Byte-identical to [`render`](Self::render) (both funnel through
    /// one writer).
    pub fn render_into(&self, out: &mut String) {
        self.write(out);
    }

    fn write(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(true) => out.push_str("true"),
            Self::Bool(false) => out.push_str("false"),
            Self::Num(n) => write_number(*n, out),
            Self::Str(s) => write_escaped(s, out),
            Self::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Self::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Writes a number the way JSON expects: integers without a fraction,
/// non-finite values (which JSON cannot carry) as `null`.
fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes `s` as a JSON string literal with all required escapes.
fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected {word})")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text.parse().map_err(|_| JsonError {
            msg: format!("invalid number {text:?}"),
            at: start,
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                msg: format!("number out of range {text:?}"),
                at: start,
            });
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe
                    // to do bytewise until the next scalar boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-12", Json::Num(-12.0)),
            ("3.5", Json::Num(3.5)),
            ("1e3", Json::Num(1000.0)),
        ] {
            assert_eq!(Json::parse(text).expect(text), v, "{text}");
        }
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.25).render(), "0.25");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::parse(r#""a\"b\\c\n\t\u0041\u00e9""#).expect("parse");
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tAé"));
        // Surrogate pair → astral char.
        let v = Json::parse(r#""\ud83d\ude00""#).expect("parse");
        assert_eq!(v.as_str(), Some("😀"));
        // Writer escapes everything the parser needs escaped.
        let s = Json::str("x\"y\\z\n\u{01}");
        let round = Json::parse(&s.render()).expect("reparse");
        assert_eq!(round, s);
    }

    #[test]
    fn structures_and_lookup() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).expect("parse");
        let arr = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\": }",
            "tru",
            "\"unterminated",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "01x",
            "[1] garbage",
            "1e999",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn uint_preserves_large_values() {
        assert_eq!(Json::uint(7).render(), "7");
        let big = u64::MAX;
        assert_eq!(Json::uint(big).render(), format!("\"{big}\""));
    }

    #[test]
    fn as_u64_guards() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
