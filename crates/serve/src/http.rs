//! A deliberately small HTTP/1.1 server-side codec over `std::io`.
//!
//! No crates.io access, so — like the rest of the workspace — the wire
//! protocol is implemented by hand. Supported: request line + headers +
//! `Content-Length` bodies, keep-alive (HTTP/1.1 default, `Connection:
//! close` honoured), and hard limits on line length, header count, and
//! body size so a misbehaving client cannot exhaust the server.

use std::io::{self, BufRead, Write};

/// Maximum accepted request-line or header-line length (bytes).
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum accepted header count.
pub const MAX_HEADERS: usize = 100;
/// Maximum accepted request-body size (bytes).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path plus optional query string), e.g. `/query`.
    pub target: String,
    /// True for `HTTP/1.0` requests (close-by-default connection
    /// semantics).
    pub http10: bool,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-case).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The path component of the target (query string stripped).
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// True when the connection should close after this exchange:
    /// an explicit `Connection: close`, or an HTTP/1.0 request without an
    /// explicit `Connection: keep-alive` (1.0 closes by default — legacy
    /// clients delimit the response body by EOF).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.http10,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure mid-request.
    Io(io::Error),
    /// Syntactically invalid request; the message is safe to echo to the
    /// client in a 400 response.
    Malformed(&'static str),
    /// Request exceeded a protocol limit ([`MAX_LINE`], [`MAX_HEADERS`],
    /// [`MAX_BODY`]).
    TooLarge(&'static str),
    /// Valid HTTP that this server does not implement (e.g. chunked
    /// transfer encoding).
    Unsupported(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Malformed(m) => write!(f, "malformed request: {m}"),
            Self::TooLarge(m) => write!(f, "request too large: {m}"),
            Self::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Maps a read error: timeout-ish kinds retry until `deadline` (callers
/// pair a short socket read timeout with a hard whole-request deadline, so
/// a client dripping one byte per read cannot pin a reader forever).
fn check_deadline(e: &io::Error, deadline: Option<std::time::Instant>) -> Result<(), HttpError> {
    match e.kind() {
        io::ErrorKind::Interrupted => Ok(()),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            if deadline.is_some_and(|d| std::time::Instant::now() < d) {
                Ok(())
            } else {
                Err(HttpError::Malformed("request read timed out"))
            }
        }
        _ => Err(HttpError::Io(io::Error::new(e.kind(), e.to_string()))),
    }
}

/// Incremental parser state: accumulating head bytes, or streaming a
/// known-length body.
enum ParseState {
    /// Scanning buffered bytes for the head terminator. Offsets are
    /// relative to the parser's unconsumed region and only ever move
    /// forward, so re-feeding never re-scans.
    Head {
        /// Start of the line currently being scanned.
        line_start: usize,
        /// Bytes already examined for a `\n`.
        scanned: usize,
        /// Completed (non-terminator) lines seen so far.
        lines: usize,
    },
    /// Head parsed; `remaining` body bytes still outstanding.
    Body {
        request: Box<Request>,
        remaining: usize,
    },
}

/// An incremental, resumable HTTP/1.1 request parser.
///
/// Built for readiness-driven I/O: the event loop [`feed`](Self::feed)s
/// whatever bytes the socket had, then drains complete requests with
/// [`next_request`](Self::next_request) — which returns `Ok(None)` (not
/// an error) when the buffered bytes end mid-request, so a request split
/// at *any* byte boundary across reads parses identically to one that
/// arrived whole. Pipelined requests queue naturally: each
/// `next_request` call consumes exactly one request's bytes and leaves
/// the rest buffered.
///
/// After an `Err` the parser is poisoned — request framing is lost, so
/// the connection must be answered with an error and closed. The
/// blocking [`read_request`] is a thin driver over this same parser;
/// there is exactly one parsing codepath.
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by completed requests.
    pos: usize,
    state: ParseState,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser with nothing buffered.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            state: ParseState::Head {
                line_start: 0,
                scanned: 0,
                lines: 0,
            },
        }
    }

    /// Buffers more bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when no partial request is buffered — the connection is
    /// between requests (safe to idle-timeout without an error response).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ParseState::Head { .. }) && self.pos == self.buf.len()
    }

    /// Body bytes the current request still needs (0 outside a body) —
    /// lets a blocking driver bulk-consume body bytes without stealing
    /// the next pipelined request's.
    #[must_use]
    pub fn body_wanted(&self) -> usize {
        match &self.state {
            ParseState::Body { remaining, .. } => *remaining,
            ParseState::Head { .. } => 0,
        }
    }

    /// Bytes currently buffered and not yet consumed by a request.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Tries to complete one request from the buffered bytes. `Ok(None)`
    /// means the bytes end mid-request: feed more and call again.
    ///
    /// # Errors
    /// [`HttpError`] on malformed syntax, exceeded protocol limits, or
    /// unsupported features; the parser must not be reused afterwards.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            match &mut self.state {
                ParseState::Head {
                    line_start,
                    scanned,
                    lines,
                } => {
                    let data = &self.buf[self.pos..];
                    let mut head_end = None;
                    while *scanned < data.len() {
                        let b = data[*scanned];
                        if b == b'\n' {
                            let mut line_end = *scanned;
                            if line_end > *line_start && data[line_end - 1] == b'\r' {
                                line_end -= 1;
                            }
                            if line_end == *line_start {
                                head_end = Some(*scanned + 1);
                                *scanned += 1;
                                break;
                            }
                            *lines += 1;
                            // Request line + headers; one more line than
                            // MAX_HEADERS is the request line itself.
                            if *lines > MAX_HEADERS + 1 {
                                return Err(HttpError::TooLarge("too many headers"));
                            }
                            *line_start = *scanned + 1;
                        } else if *scanned - *line_start >= MAX_LINE {
                            return Err(HttpError::TooLarge("line exceeds MAX_LINE"));
                        }
                        *scanned += 1;
                    }
                    let Some(head_end) = head_end else {
                        return Ok(None);
                    };
                    let head = &self.buf[self.pos..self.pos + head_end];
                    let (request, body_len) = parse_head(head)?;
                    self.pos += head_end;
                    if body_len == 0 {
                        self.reset_after_request();
                        return Ok(Some(request));
                    }
                    // Pre-size conservatively: Content-Length is
                    // client-controlled, so don't let a declared-but-never-
                    // sent 8 MB body reserve 8 MB per connection.
                    let mut request = Box::new(request);
                    request.body = Vec::with_capacity(body_len.min(64 * 1024));
                    self.state = ParseState::Body {
                        request,
                        remaining: body_len,
                    };
                }
                ParseState::Body { request, remaining } => {
                    let avail = self.buf.len() - self.pos;
                    let take = avail.min(*remaining);
                    request
                        .body
                        .extend_from_slice(&self.buf[self.pos..self.pos + take]);
                    self.pos += take;
                    *remaining -= take;
                    if *remaining > 0 {
                        return Ok(None);
                    }
                    let ParseState::Body { request, .. } = std::mem::replace(
                        &mut self.state,
                        ParseState::Head {
                            line_start: 0,
                            scanned: 0,
                            lines: 0,
                        },
                    ) else {
                        unreachable!("state checked above");
                    };
                    self.compact();
                    return Ok(Some(*request));
                }
            }
        }
    }

    fn reset_after_request(&mut self) {
        self.state = ParseState::Head {
            line_start: 0,
            scanned: 0,
            lines: 0,
        };
        self.compact();
    }

    /// Drops consumed bytes so pipelined leftovers start at offset 0
    /// (head-scan offsets are relative to the unconsumed region).
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
        } else {
            self.buf.drain(..self.pos);
        }
        self.pos = 0;
    }
}

/// Parses a complete head (request line + headers + blank line) and
/// validates framing; returns the request (body still empty) and its
/// declared body length.
fn parse_head(head: &[u8]) -> Result<(Request, usize), HttpError> {
    let text =
        std::str::from_utf8(head).map_err(|_| HttpError::Malformed("non-UTF-8 header data"))?;
    let mut line_iter = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = line_iter.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpError::Malformed("bad method"))?
        .to_owned();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(HttpError::Malformed("bad request target"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra request-line fields"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Unsupported("only HTTP/1.0 and HTTP/1.1"));
    }

    let mut headers = Vec::new();
    for line in line_iter {
        if line.is_empty() {
            break; // the head terminator
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method,
        target,
        http10: version == "HTTP/1.0",
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Unsupported("transfer-encoding"));
    }
    // RFC 7230 §3.3.3: conflicting Content-Length values must be rejected
    // outright — first-wins would let a front proxy and this server parse
    // different request boundaries (request smuggling).
    if request
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return Err(HttpError::Malformed("multiple content-length headers"));
    }
    let body_len = match request.header("content-length") {
        None => 0,
        Some(len) => {
            // RFC 9110 grammar is 1*DIGIT; `usize::from_str` also accepts
            // a leading '+', which a front proxy would treat as invalid —
            // another parse-differential smuggling vector.
            if len.is_empty() || !len.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::Malformed("bad content-length"));
            }
            let len: usize = len
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if len > MAX_BODY {
                return Err(HttpError::TooLarge("body exceeds MAX_BODY"));
            }
            len
        }
    };
    Ok((request, body_len))
}

/// Reads one request off the stream — a blocking driver over
/// [`RequestParser`]. `Ok(None)` means the peer closed the connection
/// cleanly between requests (normal keep-alive teardown).
///
/// `deadline`, when given, bounds the *whole* request read: reads that
/// time out at the socket level are retried until the deadline passes,
/// then rejected — pair it with a short socket read timeout.
///
/// # Errors
/// [`HttpError`] on transport failure, malformed syntax, exceeded
/// protocol limits, or a blown deadline.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    deadline: Option<std::time::Instant>,
) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new();
    loop {
        if let Some(request) = parser.next_request()? {
            return Ok(Some(request));
        }
        // Checked on the success path too: a client dripping bytes just
        // under the socket timeout must still hit the whole-request bound.
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) && !parser.is_idle() {
            return Err(HttpError::Malformed("request read timed out"));
        }
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                if parser.is_idle() {
                    return Ok(None);
                }
                if parser.body_wanted() > 0 {
                    return Err(HttpError::Malformed("body shorter than content-length"));
                }
                return Err(HttpError::Malformed("unexpected EOF mid-request"));
            }
            Ok(chunk) => chunk,
            Err(e) => {
                check_deadline(&e, deadline)?;
                continue;
            }
        };
        // Consume only what this request can claim: head bytes one at a
        // time (the terminator position isn't known yet), body bytes in
        // bulk (the parser knows exactly how many remain). Pipelined
        // bytes belonging to the NEXT request stay in the reader.
        let take = match parser.body_wanted() {
            0 => 1,
            wanted => wanted.min(chunk.len()),
        };
        parser.feed(&chunk[..take]);
        reader.consume(take);
    }
}

/// Appends a response head (status line + standard headers + blank line)
/// to `out`. The event loop renders heads with this straight into reused
/// per-connection write buffers; [`write_response`] is the same head over
/// a blocking writer.
pub fn write_head(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
) {
    write_head_with(
        out,
        status,
        reason,
        content_type,
        content_length,
        keep_alive,
        &[],
    );
}

/// [`write_head`] plus extra header lines (name, value) before the blank
/// terminator — e.g. `Retry-After` on a drain-time 503.
pub fn write_head_with(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
    extra: &[(&str, &str)],
) {
    // Writing into a Vec<u8> cannot fail.
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {content_length}\r\nconnection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    out.extend_from_slice(b"\r\n");
}

/// Writes a complete response with a body and standard headers.
///
/// # Errors
/// Propagates transport errors.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = Vec::with_capacity(128);
    write_head(
        &mut head,
        status,
        reason,
        content_type,
        body.len(),
        keep_alive,
    );
    writer.write_all(&head)?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw), None)
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse(b"GET /health?verbose=1 HTTP/1.1\r\nHost: x\r\nX-Custom:  padded \r\n\r\n")
            .expect("ok")
            .expect("some");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/health?verbose=1");
        assert_eq!(req.path(), "/health");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("X-CUSTOM"), Some("padded"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body_and_bare_lf() {
        let req = parse(b"POST /query HTTP/1.1\ncontent-length: 4\nConnection: close\n\nabcd")
            .expect("ok")
            .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").expect("clean EOF").is_none());
    }

    #[test]
    fn malformed_requests_rejected() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"GET /x HTTP/1.1\r\n: empty\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: ab\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: +5\r\n\r\nabcde",
            b"POST /x HTTP/1.1\r\ncontent-length: -5\r\n\r\nabcde",
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            assert!(
                parse(raw).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn truncated_requests_rejected() {
        for raw in [
            &b"GET /x HT"[..],                                   // EOF mid request line
            b"GET /x HTTP/1.1\r\nHost: x",                       // EOF mid header
            b"GET /x HTTP/1.1\r\n",                              // EOF before blank line
            b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nab", // short body
        ] {
            assert!(
                parse(raw).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_inputs_rejected() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));

        let mut many_headers = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));

        let huge_body = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge_body.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn http10_closes_by_default() {
        let req = parse(b"GET /health HTTP/1.0\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(req.http10);
        assert!(req.wants_close(), "HTTP/1.0 closes by default");
        let req = parse(b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(!req.wants_close(), "explicit keep-alive wins on 1.0");
        let req = parse(b"GET /health HTTP/1.1\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(!req.wants_close(), "HTTP/1.1 keeps alive by default");
    }

    #[test]
    fn duplicate_content_length_rejected() {
        // First-wins or last-wins would desynchronise this server from a
        // front proxy (request smuggling); both orders must be rejected.
        for raw in [
            &b"POST /x HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 4\r\n\r\nabcd"[..],
            b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 2\r\n\r\nabcd",
            b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nabcd",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    /// A reader that yields one byte then times out forever — a
    /// byte-dripping slow client.
    struct Stall {
        sent: bool,
    }

    impl std::io::Read for Stall {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.sent {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            } else {
                self.sent = true;
                buf[0] = b'G';
                Ok(1)
            }
        }
    }

    #[test]
    fn deadline_bounds_slow_requests() {
        use std::time::{Duration, Instant};
        // Expired deadline: the stalled read must fail, not spin forever.
        let mut reader = BufReader::new(Stall { sent: false });
        let past = Instant::now() - Duration::from_secs(1);
        assert!(matches!(
            read_request(&mut reader, Some(past)),
            Err(HttpError::Malformed("request read timed out"))
        ));
        // With no deadline, socket timeouts surface unchanged (via the
        // same path the connection handler retries on).
        let mut reader = BufReader::new(Stall { sent: false });
        assert!(read_request(&mut reader, None).is_err());
    }

    #[test]
    fn keep_alive_sequencing() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let a = read_request(&mut reader, None).expect("ok").expect("first");
        let b = read_request(&mut reader, None)
            .expect("ok")
            .expect("second");
        assert_eq!(a.target, "/a");
        assert_eq!(b.target, "/b");
        assert!(read_request(&mut reader, None).expect("ok").is_none());
    }

    #[test]
    fn response_writer_shapes_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{}", true).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 400, "Bad Request", "application/json", b"", false)
            .expect("write");
        assert!(String::from_utf8(out)
            .expect("utf8")
            .contains("connection: close"));
    }

    /// Reference parse of a byte stream containing exactly the given
    /// requests, fed in one piece.
    fn whole_parse(raw: &[u8], expect: usize) -> Vec<Request> {
        let mut parser = RequestParser::new();
        parser.feed(raw);
        let mut out = Vec::new();
        while let Some(req) = parser.next_request().expect("whole parse") {
            out.push(req);
        }
        assert_eq!(out.len(), expect, "reference parse");
        assert!(parser.is_idle());
        out
    }

    fn assert_same(a: &Request, b: &Request) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.target, b.target);
        assert_eq!(a.body, b.body);
        assert_eq!(a.wants_close(), b.wants_close());
        assert_eq!(a.header("host"), b.header("host"));
    }

    #[test]
    fn split_at_every_byte_boundary_parses_identically() {
        // Hostile transport: a pipelined pair (one with a body) split
        // into two feeds at EVERY byte boundary must parse exactly like
        // the unsplit stream — same requests, no spurious errors, and
        // `Ok(None)` (never `Err`) at the incomplete points.
        let raw: &[u8] =
            b"POST /query HTTP/1.1\r\nhost: a\r\ncontent-length: 11\r\n\r\n{\"v\":[1,2]}\
                           GET /stats HTTP/1.1\r\nhost: b\r\nconnection: close\r\n\r\n";
        let reference = whole_parse(raw, 2);
        for split in 0..=raw.len() {
            let mut parser = RequestParser::new();
            let mut got = Vec::new();
            for part in [&raw[..split], &raw[split..]] {
                parser.feed(part);
                while let Some(req) = parser
                    .next_request()
                    .unwrap_or_else(|e| panic!("split at {split}: {e:?}"))
                {
                    got.push(req);
                }
            }
            assert_eq!(got.len(), 2, "split at {split} lost a request");
            for (a, b) in got.iter().zip(reference.iter()) {
                assert_same(a, b);
            }
            assert!(parser.is_idle(), "split at {split} left state behind");
        }
    }

    #[test]
    fn one_byte_at_a_time_feed() {
        let raw: &[u8] = b"POST /topk HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        let reference = whole_parse(raw, 1);
        let mut parser = RequestParser::new();
        let mut got = None;
        for (i, &b) in raw.iter().enumerate() {
            parser.feed(&[b]);
            match parser.next_request().expect("byte feed") {
                Some(req) => {
                    assert_eq!(i, raw.len() - 1, "completed early at byte {i}");
                    got = Some(req);
                }
                None => assert!(i < raw.len() - 1, "never completed"),
            }
        }
        assert_same(&got.expect("request"), &reference[0]);
    }

    #[test]
    fn malformed_bytes_poison_after_valid_prefix() {
        // A valid pipelined prefix followed by garbage: the parser must
        // hand out the valid requests first, then error exactly once.
        let mut parser = RequestParser::new();
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nBOGUS LINE\r\n\r\n");
        let a = parser.next_request().expect("ok").expect("first");
        assert_eq!(a.target, "/a");
        let b = parser.next_request().expect("ok").expect("second");
        assert_eq!(b.target, "/b");
        assert!(parser.next_request().is_err(), "garbage must poison");
    }

    #[test]
    fn parser_limits_apply_incrementally() {
        // A request line dripped in forever must trip MAX_LINE without
        // waiting for a newline — an attacker never sends one.
        let mut parser = RequestParser::new();
        parser.feed(b"GET /");
        let chunk = [b'a'; 1024];
        let mut err = None;
        for _ in 0..(MAX_LINE / 1024 + 2) {
            parser.feed(&chunk);
            match parser.next_request() {
                Ok(None) => {}
                Ok(Some(_)) => panic!("parsed an unterminated line"),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(HttpError::TooLarge(_))), "{err:?}");
    }
}
