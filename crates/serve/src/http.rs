//! A deliberately small HTTP/1.1 server-side codec over `std::io`.
//!
//! No crates.io access, so — like the rest of the workspace — the wire
//! protocol is implemented by hand. Supported: request line + headers +
//! `Content-Length` bodies, keep-alive (HTTP/1.1 default, `Connection:
//! close` honoured), and hard limits on line length, header count, and
//! body size so a misbehaving client cannot exhaust the server.

use std::io::{self, BufRead, Write};

/// Maximum accepted request-line or header-line length (bytes).
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum accepted header count.
pub const MAX_HEADERS: usize = 100;
/// Maximum accepted request-body size (bytes).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path plus optional query string), e.g. `/query`.
    pub target: String,
    /// True for `HTTP/1.0` requests (close-by-default connection
    /// semantics).
    pub http10: bool,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-case).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The path component of the target (query string stripped).
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// True when the connection should close after this exchange:
    /// an explicit `Connection: close`, or an HTTP/1.0 request without an
    /// explicit `Connection: keep-alive` (1.0 closes by default — legacy
    /// clients delimit the response body by EOF).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.http10,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure mid-request.
    Io(io::Error),
    /// Syntactically invalid request; the message is safe to echo to the
    /// client in a 400 response.
    Malformed(&'static str),
    /// Request exceeded a protocol limit ([`MAX_LINE`], [`MAX_HEADERS`],
    /// [`MAX_BODY`]).
    TooLarge(&'static str),
    /// Valid HTTP that this server does not implement (e.g. chunked
    /// transfer encoding).
    Unsupported(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Malformed(m) => write!(f, "malformed request: {m}"),
            Self::TooLarge(m) => write!(f, "request too large: {m}"),
            Self::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Maps a read error: timeout-ish kinds retry until `deadline` (callers
/// pair a short socket read timeout with a hard whole-request deadline, so
/// a client dripping one byte per read cannot pin a reader forever).
fn check_deadline(e: &io::Error, deadline: Option<std::time::Instant>) -> Result<(), HttpError> {
    match e.kind() {
        io::ErrorKind::Interrupted => Ok(()),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            if deadline.is_some_and(|d| std::time::Instant::now() < d) {
                Ok(())
            } else {
                Err(HttpError::Malformed("request read timed out"))
            }
        }
        _ => Err(HttpError::Io(io::Error::new(e.kind(), e.to_string()))),
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, capped at [`MAX_LINE`]
/// bytes. Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(
    reader: &mut R,
    deadline: Option<std::time::Instant>,
) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) && !buf.is_empty() {
            return Err(HttpError::Malformed("request read timed out"));
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("unexpected EOF mid-line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header data"))?;
                    return Ok(Some(line));
                }
                if buf.len() >= MAX_LINE {
                    return Err(HttpError::TooLarge("line exceeds MAX_LINE"));
                }
                buf.push(byte[0]);
            }
            Err(e) => check_deadline(&e, deadline)?,
        }
    }
}

/// Reads exactly `buf.len()` body bytes, honouring the request deadline.
fn read_body<R: BufRead>(
    reader: &mut R,
    buf: &mut [u8],
    deadline: Option<std::time::Instant>,
) -> Result<(), HttpError> {
    let mut filled = 0;
    while filled < buf.len() {
        // Checked on the success path too: a client dripping bytes just
        // under the socket timeout must still hit the whole-request bound.
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return Err(HttpError::Malformed("request read timed out"));
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(HttpError::Malformed("body shorter than content-length")),
            Ok(n) => filled += n,
            Err(e) => check_deadline(&e, deadline)?,
        }
    }
    Ok(())
}

/// Reads one request off the stream. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive teardown).
///
/// `deadline`, when given, bounds the *whole* request read: reads that
/// time out at the socket level are retried until the deadline passes,
/// then rejected — pair it with a short socket read timeout.
///
/// # Errors
/// [`HttpError`] on transport failure, malformed syntax, exceeded
/// protocol limits, or a blown deadline.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    deadline: Option<std::time::Instant>,
) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader, deadline)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpError::Malformed("bad method"))?
        .to_owned();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(HttpError::Malformed("bad request target"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra request-line fields"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Unsupported("only HTTP/1.0 and HTTP/1.1"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, deadline)?.ok_or(HttpError::Malformed("EOF in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method,
        target,
        http10: version == "HTTP/1.0",
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Unsupported("transfer-encoding"));
    }
    // RFC 7230 §3.3.3: conflicting Content-Length values must be rejected
    // outright — first-wins would let a front proxy and this server parse
    // different request boundaries (request smuggling).
    if request
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return Err(HttpError::Malformed("multiple content-length headers"));
    }
    if let Some(len) = request.header("content-length") {
        // RFC 9110 grammar is 1*DIGIT; `usize::from_str` also accepts a
        // leading '+', which a front proxy would treat as invalid — another
        // parse-differential smuggling vector.
        if len.is_empty() || !len.bytes().all(|b| b.is_ascii_digit()) {
            return Err(HttpError::Malformed("bad content-length"));
        }
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed("bad content-length"))?;
        if len > MAX_BODY {
            return Err(HttpError::TooLarge("body exceeds MAX_BODY"));
        }
        let mut body = vec![0u8; len];
        read_body(reader, &mut body, deadline)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// Writes a complete response with a body and standard headers.
///
/// # Errors
/// Propagates transport errors.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw), None)
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse(b"GET /health?verbose=1 HTTP/1.1\r\nHost: x\r\nX-Custom:  padded \r\n\r\n")
            .expect("ok")
            .expect("some");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/health?verbose=1");
        assert_eq!(req.path(), "/health");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("X-CUSTOM"), Some("padded"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body_and_bare_lf() {
        let req = parse(b"POST /query HTTP/1.1\ncontent-length: 4\nConnection: close\n\nabcd")
            .expect("ok")
            .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").expect("clean EOF").is_none());
    }

    #[test]
    fn malformed_requests_rejected() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"GET /x HTTP/1.1\r\n: empty\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: ab\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: +5\r\n\r\nabcde",
            b"POST /x HTTP/1.1\r\ncontent-length: -5\r\n\r\nabcde",
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            assert!(
                parse(raw).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn truncated_requests_rejected() {
        for raw in [
            &b"GET /x HT"[..],                                   // EOF mid request line
            b"GET /x HTTP/1.1\r\nHost: x",                       // EOF mid header
            b"GET /x HTTP/1.1\r\n",                              // EOF before blank line
            b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nab", // short body
        ] {
            assert!(
                parse(raw).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_inputs_rejected() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));

        let mut many_headers = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));

        let huge_body = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge_body.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn http10_closes_by_default() {
        let req = parse(b"GET /health HTTP/1.0\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(req.http10);
        assert!(req.wants_close(), "HTTP/1.0 closes by default");
        let req = parse(b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(!req.wants_close(), "explicit keep-alive wins on 1.0");
        let req = parse(b"GET /health HTTP/1.1\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(!req.wants_close(), "HTTP/1.1 keeps alive by default");
    }

    #[test]
    fn duplicate_content_length_rejected() {
        // First-wins or last-wins would desynchronise this server from a
        // front proxy (request smuggling); both orders must be rejected.
        for raw in [
            &b"POST /x HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 4\r\n\r\nabcd"[..],
            b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 2\r\n\r\nabcd",
            b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nabcd",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    /// A reader that yields one byte then times out forever — a
    /// byte-dripping slow client.
    struct Stall {
        sent: bool,
    }

    impl std::io::Read for Stall {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.sent {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            } else {
                self.sent = true;
                buf[0] = b'G';
                Ok(1)
            }
        }
    }

    #[test]
    fn deadline_bounds_slow_requests() {
        use std::time::{Duration, Instant};
        // Expired deadline: the stalled read must fail, not spin forever.
        let mut reader = BufReader::new(Stall { sent: false });
        let past = Instant::now() - Duration::from_secs(1);
        assert!(matches!(
            read_request(&mut reader, Some(past)),
            Err(HttpError::Malformed("request read timed out"))
        ));
        // With no deadline, socket timeouts surface unchanged (via the
        // same path the connection handler retries on).
        let mut reader = BufReader::new(Stall { sent: false });
        assert!(read_request(&mut reader, None).is_err());
    }

    #[test]
    fn keep_alive_sequencing() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let a = read_request(&mut reader, None).expect("ok").expect("first");
        let b = read_request(&mut reader, None)
            .expect("ok")
            .expect("second");
        assert_eq!(a.target, "/a");
        assert_eq!(b.target, "/b");
        assert!(read_request(&mut reader, None).expect("ok").is_none());
    }

    #[test]
    fn response_writer_shapes_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{}", true).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 400, "Bad Request", "application/json", b"", false)
            .expect("write");
        assert!(String::from_utf8(out)
            .expect("utf8")
            .contains("connection: close"));
    }
}
