//! Dynamic LSH via LSH Forest (Bawa, Condie & Ganesan, WWW 2005), as used by
//! each LSH Ensemble partition (§5.5 of the paper).
//!
//! The forest holds `b_max` "prefix trees"; tree `t` owns signature slots
//! `[t·r_max, (t+1)·r_max)`. At query time the *effective* parameters
//! `(b, r)` with `b ≤ b_max`, `r ≤ r_max` are chosen freely: use the first
//! `b` trees, compare keys only on their first `r` slots. This is what lets
//! the ensemble re-tune its Jaccard threshold for every query without
//! rebuilding anything.
//!
//! ## Representation
//!
//! Each prefix tree is stored as a sorted column of fixed-width keys — the
//! standard array encoding of a prefix tree (also used by `datasketch`):
//! a prefix query of depth `r` is a binary-search for the equal range of the
//! first `r` slots. Keys are the signature slots truncated to 32 bits;
//! truncation collides with probability 2⁻³² per slot, far below MinHash's
//! own noise floor, and halves index memory.
//!
//! ## Mutability
//!
//! Inserts are staged in an unsorted tail per tree. Queries scan the tail
//! linearly, so correctness never requires a rebuild; [`LshForest::commit`]
//! merges the tail into the sorted run for query speed. This gives the
//! "single pass to build, incremental additions afterwards" behaviour the
//! paper requires of an open-world index.

use crate::DomainId;
use lshe_minhash::Signature;

/// Truncates a signature slot (61-bit value) to its top 32 bits for compact
/// key storage.
///
/// Public because out-of-crate readers of the committed form (the
/// memory-mapped store backend) must derive query prefixes with the exact
/// same truncation the forest used at insert time.
#[inline]
#[must_use]
pub fn truncate_slot(v: u64) -> u32 {
    // Slots are < 2^61 (or the u64::MAX empty sentinel, which saturates).
    (v >> 29).min(u64::from(u32::MAX)) as u32
}

/// One prefix tree: a sorted column of `r_max`-wide keys plus a staged,
/// unsorted tail.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct PrefixTree {
    /// Row-major keys of committed entries, `r_max` values per row, sorted
    /// lexicographically by row.
    keys: Vec<u32>,
    /// Domain id of each committed row (parallel to `keys` rows).
    ids: Vec<DomainId>,
    /// Staged keys, unsorted.
    staged_keys: Vec<u32>,
    /// Staged ids.
    staged_ids: Vec<DomainId>,
}

impl PrefixTree {
    fn row(keys: &[u32], r_max: usize, i: usize) -> &[u32] {
        &keys[i * r_max..(i + 1) * r_max]
    }

    fn commit(&mut self, r_max: usize) {
        if self.staged_ids.is_empty() {
            return;
        }
        self.keys.append(&mut self.staged_keys);
        self.ids.append(&mut self.staged_ids);
        let n = self.ids.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let keys = &self.keys;
        order.sort_unstable_by(|&a, &b| {
            Self::row(keys, r_max, a as usize).cmp(Self::row(keys, r_max, b as usize))
        });
        let mut new_keys = Vec::with_capacity(self.keys.len());
        let mut new_ids = Vec::with_capacity(n);
        for &i in &order {
            new_keys.extend_from_slice(Self::row(&self.keys, r_max, i as usize));
            new_ids.push(self.ids[i as usize]);
        }
        self.keys = new_keys;
        self.ids = new_ids;
    }

    /// Drops every row stored under `id`, committed and staged, keeping
    /// the committed region sorted. Returns `(committed, staged)` rows
    /// removed.
    fn remove(&mut self, r_max: usize, id: DomainId) -> (usize, usize) {
        let committed = Self::retain_rows(&mut self.keys, &mut self.ids, r_max, id);
        let staged = Self::retain_rows(&mut self.staged_keys, &mut self.staged_ids, r_max, id);
        (committed, staged)
    }

    /// Removes the rows of `id` from one (keys, ids) column pair, keeping
    /// relative row order. Returns the number of rows removed.
    fn retain_rows(
        keys: &mut Vec<u32>,
        ids: &mut Vec<DomainId>,
        r_max: usize,
        id: DomainId,
    ) -> usize {
        let before = ids.len();
        let mut write = 0usize;
        for read in 0..ids.len() {
            if ids[read] == id {
                continue;
            }
            if write != read {
                ids[write] = ids[read];
                let (dst, src) = (write * r_max, read * r_max);
                keys.copy_within(src..src + r_max, dst);
            }
            write += 1;
        }
        ids.truncate(write);
        keys.truncate(write * r_max);
        before - write
    }

    /// Appends ids of all rows whose first `r` key slots equal `prefix` to
    /// `out`. `prefix.len() == r`.
    fn query(&self, r_max: usize, prefix: &[u32], out: &mut Vec<DomainId>) {
        let r = prefix.len();
        let n = self.ids.len();
        // Binary search over the sorted region.
        let lower = partition_point(n, |i| &Self::row(&self.keys, r_max, i)[..r] < prefix);
        let mut i = lower;
        while i < n && &Self::row(&self.keys, r_max, i)[..r] == prefix {
            out.push(self.ids[i]);
            i += 1;
        }
        // Linear scan of the staged tail.
        for (j, &id) in self.staged_ids.iter().enumerate() {
            if &Self::row(&self.staged_keys, r_max, j)[..r] == prefix {
                out.push(id);
            }
        }
    }
}

/// `partition_point` over an implicit `0..n` sequence.
fn partition_point(n: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A dynamic MinHash LSH index supporting query-time `(b, r)` selection.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LshForest {
    b_max: usize,
    r_max: usize,
    trees: Vec<PrefixTree>,
    len: usize,
    staged: usize,
}

impl LshForest {
    /// Creates a forest of `b_max` prefix trees of depth `r_max`.
    ///
    /// Signatures must carry at least `b_max · r_max` slots. With the
    /// paper's defaults (`m = 256`), `b_max = 32`, `r_max = 8` exposes the
    /// full `(b ≤ 32, r ≤ 8)` tuning grid.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(b_max: usize, r_max: usize) -> Self {
        assert!(b_max > 0 && r_max > 0, "forest dimensions must be positive");
        Self {
            b_max,
            r_max,
            trees: vec![PrefixTree::default(); b_max],
            len: 0,
            staged: 0,
        }
    }

    /// Maximum number of bands usable at query time.
    #[must_use]
    pub fn b_max(&self) -> usize {
        self.b_max
    }

    /// Maximum prefix depth usable at query time.
    #[must_use]
    pub fn r_max(&self) -> usize {
        self.r_max
    }

    /// Number of indexed domains (committed + staged).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no domain has been indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of inserts not yet merged into the sorted runs.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged
    }

    /// Stages a domain signature for indexing under `id`.
    ///
    /// The entry is immediately visible to queries (via the staged tail);
    /// call [`commit`](Self::commit) to fold it into the sorted runs.
    ///
    /// # Panics
    /// Panics if the signature has fewer than `b_max · r_max` slots.
    pub fn insert(&mut self, id: DomainId, sig: &Signature) {
        assert!(
            sig.len() >= self.b_max * self.r_max,
            "signature too short: {} < {}",
            sig.len(),
            self.b_max * self.r_max
        );
        let slots = sig.slots();
        for (t, tree) in self.trees.iter_mut().enumerate() {
            let start = t * self.r_max;
            tree.staged_keys.extend(
                slots[start..start + self.r_max]
                    .iter()
                    .map(|&v| truncate_slot(v)),
            );
            tree.staged_ids.push(id);
        }
        self.len += 1;
        self.staged += 1;
    }

    /// Merges all staged entries into the sorted runs (O(n log n) per tree).
    pub fn commit(&mut self) {
        for tree in &mut self.trees {
            tree.commit(self.r_max);
        }
        self.staged = 0;
    }

    /// Removes every entry stored under `id` — committed rows and staged
    /// tail rows alike — from all trees. Returns `true` if the id was
    /// present. Queries reflect the removal immediately; no commit needed.
    ///
    /// Domains inserted more than once under the same id lose *all* their
    /// rows.
    pub fn remove(&mut self, id: DomainId) -> bool {
        let mut committed = 0usize;
        let mut staged = 0usize;
        for tree in &mut self.trees {
            let (c, s) = tree.remove(self.r_max, id);
            committed = committed.max(c);
            staged = staged.max(s);
        }
        // Every insert writes one row to EVERY tree, so per-tree removal
        // counts agree; the max is the number of inserts this id had.
        self.len -= committed + staged;
        self.staged -= staged;
        committed + staged > 0
    }

    /// True if `id` has at least one row in the forest.
    #[must_use]
    pub fn contains(&self, id: DomainId) -> bool {
        self.trees
            .first()
            .is_some_and(|t| t.ids.contains(&id) || t.staged_ids.contains(&id))
    }

    /// Iterates over the ids of every indexed domain (committed then
    /// staged), in storage order. Ids inserted more than once repeat.
    pub fn ids(&self) -> impl Iterator<Item = DomainId> + '_ {
        let tree = self.trees.first();
        tree.map(|t| t.ids.iter().copied())
            .into_iter()
            .flatten()
            .chain(
                tree.map(|t| t.staged_ids.iter().copied())
                    .into_iter()
                    .flatten(),
            )
    }

    /// Collects candidates for `sig` using the first `b` trees at prefix
    /// depth `r`, appending to `out` (duplicates across trees are possible;
    /// callers dedup, typically into a hash set).
    ///
    /// # Panics
    /// Panics if `b`/`r` are zero or exceed the forest dimensions, or the
    /// signature is too short.
    pub fn query_into(&self, sig: &Signature, b: usize, r: usize, out: &mut Vec<DomainId>) {
        assert!(b >= 1 && b <= self.b_max, "b = {b} out of range");
        assert!(r >= 1 && r <= self.r_max, "r = {r} out of range");
        assert!(
            sig.len() >= self.b_max * self.r_max,
            "signature too short: {} < {}",
            sig.len(),
            self.b_max * self.r_max
        );
        let slots = sig.slots();
        let mut prefix = Vec::with_capacity(r);
        for (t, tree) in self.trees[..b].iter().enumerate() {
            let start = t * self.r_max;
            prefix.clear();
            prefix.extend(slots[start..start + r].iter().map(|&v| truncate_slot(v)));
            tree.query(self.r_max, &prefix, out);
        }
    }

    /// Deduplicated candidate set for `sig` at `(b, r)`.
    #[must_use]
    pub fn query(&self, sig: &Signature, b: usize, r: usize) -> Vec<DomainId> {
        let mut raw = Vec::new();
        self.query_into(sig, b, r, &mut raw);
        raw.sort_unstable();
        raw.dedup();
        raw
    }

    /// Committed (keys, ids) columns per tree, for persistence.
    pub(crate) fn raw_trees(&self) -> impl Iterator<Item = (&[u32], &[DomainId])> {
        self.trees.iter().map(|t| (&t.keys[..], &t.ids[..]))
    }

    /// The committed (keys, ids) columns of every tree, in tree order —
    /// the canonical sorted form external serialisers (the v2 store
    /// packer) copy out verbatim.
    ///
    /// # Panics
    /// Panics if staged inserts exist: the staged tail is not part of the
    /// canonical form, so callers must [`commit`](Self::commit) first.
    pub fn committed_trees(&self) -> impl Iterator<Item = (&[u32], &[DomainId])> {
        assert_eq!(
            self.staged, 0,
            "committed_trees on a forest with staged inserts; commit first"
        );
        self.raw_trees()
    }

    /// Rebuilds a forest from persisted tree columns. Callers (the decoder)
    /// are responsible for structural validation; the columns must be the
    /// canonical committed form produced by `raw_trees`.
    pub(crate) fn from_raw_trees(
        b_max: usize,
        r_max: usize,
        len: usize,
        trees: Vec<(Vec<u32>, Vec<DomainId>)>,
    ) -> Self {
        Self {
            b_max,
            r_max,
            trees: trees
                .into_iter()
                .map(|(keys, ids)| PrefixTree {
                    keys,
                    ids,
                    staged_keys: Vec::new(),
                    staged_ids: Vec::new(),
                })
                .collect(),
            len,
            staged: 0,
        }
    }

    /// Approximate heap footprint of the index in bytes (diagnostics).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.trees
            .iter()
            .map(|t| {
                t.keys.capacity() * 4
                    + t.ids.capacity() * std::mem::size_of::<DomainId>()
                    + t.staged_keys.capacity() * 4
                    + t.staged_ids.capacity() * std::mem::size_of::<DomainId>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_minhash::MinHasher;

    fn forest_with(h: &MinHasher, domains: &[(DomainId, Vec<u64>)], commit: bool) -> LshForest {
        let mut f = LshForest::new(32, 8);
        for (id, vals) in domains {
            f.insert(*id, &h.signature(vals.iter().copied()));
        }
        if commit {
            f.commit();
        }
        f
    }

    #[test]
    fn exact_match_found_at_any_params() {
        let h = MinHasher::new(256);
        let vals = MinHasher::synthetic_values(1, 200);
        let f = forest_with(&h, &[(5, vals.clone())], true);
        let sig = h.signature(vals);
        for &(b, r) in &[(1usize, 1usize), (32, 8), (4, 2), (32, 1)] {
            assert!(f.query(&sig, b, r).contains(&5), "missed at b={b} r={r}");
        }
    }

    #[test]
    fn staged_entries_visible_before_commit() {
        let h = MinHasher::new(256);
        let vals = MinHasher::synthetic_values(2, 100);
        let f = forest_with(&h, &[(1, vals.clone())], false);
        assert_eq!(f.staged_len(), 1);
        assert!(f.query(&h.signature(vals), 32, 8).contains(&1));
    }

    #[test]
    fn commit_is_query_transparent() {
        let h = MinHasher::new(256);
        let domains: Vec<(DomainId, Vec<u64>)> = (0..50)
            .map(|i| (i, MinHasher::synthetic_values(u64::from(i) + 10, 150)))
            .collect();
        let staged = forest_with(&h, &domains, false);
        let committed = forest_with(&h, &domains, true);
        assert_eq!(committed.staged_len(), 0);
        for (id, vals) in &domains {
            let sig = h.signature(vals.iter().copied());
            for &(b, r) in &[(8usize, 4usize), (32, 8), (16, 2)] {
                let a = staged.query(&sig, b, r);
                let c = committed.query(&sig, b, r);
                assert_eq!(a, c, "id={id} b={b} r={r}");
            }
        }
    }

    #[test]
    fn incremental_insert_after_commit() {
        let h = MinHasher::new(256);
        let mut f = forest_with(&h, &[(1, MinHasher::synthetic_values(100, 80))], true);
        let late = MinHasher::synthetic_values(200, 80);
        f.insert(2, &h.signature(late.iter().copied()));
        assert!(f
            .query(&h.signature(late.iter().copied()), 32, 8)
            .contains(&2));
        f.commit();
        assert!(f.query(&h.signature(late), 32, 8).contains(&2));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn lower_r_is_more_permissive() {
        // Candidates at depth r must be a superset of candidates at r+1
        // (same b): shorter prefixes match more rows.
        let h = MinHasher::new(256);
        let base = MinHasher::synthetic_values(7, 500);
        let domains: Vec<(DomainId, Vec<u64>)> = (0..100)
            .map(|i| {
                // Variants sharing a sliding fraction of `base`.
                let keep = 5 * (i as usize % 100);
                let mut v: Vec<u64> = base.iter().take(keep).copied().collect();
                v.extend(MinHasher::synthetic_values(1000 + u64::from(i), 500 - keep));
                (i, v)
            })
            .collect();
        let f = forest_with(&h, &domains, true);
        let q = h.signature(base);
        for b in [8usize, 32] {
            let mut prev: Option<Vec<DomainId>> = None;
            for r in (1..=8).rev() {
                let cur = f.query(&q, b, r);
                if let Some(p) = prev {
                    for id in p {
                        assert!(cur.contains(&id), "r={r} lost id {id}");
                    }
                }
                prev = Some(cur);
            }
        }
    }

    #[test]
    fn higher_b_is_more_permissive() {
        let h = MinHasher::new(256);
        let base = MinHasher::synthetic_values(77, 400);
        let domains: Vec<(DomainId, Vec<u64>)> = (0..60)
            .map(|i| {
                let keep = 6 * (i as usize % 60);
                let mut v: Vec<u64> = base.iter().take(keep).copied().collect();
                v.extend(MinHasher::synthetic_values(2000 + u64::from(i), 400 - keep));
                (i, v)
            })
            .collect();
        let f = forest_with(&h, &domains, true);
        let q = h.signature(base);
        let mut prev: Vec<DomainId> = Vec::new();
        for b in 1..=32 {
            let cur = f.query(&q, b, 4);
            for id in &prev {
                assert!(cur.contains(id), "b={b} lost id {id}");
            }
            prev = cur;
        }
    }

    #[test]
    fn forest_matches_static_lsh_at_full_params() {
        // At (b, r) = (b_max, r_max) the forest answers the same buckets as
        // a static banded LSH over the same slot layout, modulo the 32-bit
        // key truncation (which only ever ADDS candidates).
        let h = MinHasher::new(256);
        let domains: Vec<(DomainId, Vec<u64>)> = (0..80)
            .map(|i| (i, MinHasher::synthetic_values(3000 + u64::from(i), 120)))
            .collect();
        let f = forest_with(&h, &domains, true);
        let mut s = crate::MinHashLsh::new(32, 8);
        for (id, vals) in &domains {
            s.insert(*id, &h.signature(vals.iter().copied()));
        }
        for (_, vals) in domains.iter().take(10) {
            let sig = h.signature(vals.iter().copied());
            let from_forest = f.query(&sig, 32, 8);
            let from_static = s.query(&sig);
            for id in from_static {
                assert!(from_forest.contains(&id));
            }
        }
    }

    #[test]
    fn empty_forest_returns_nothing() {
        let h = MinHasher::new(256);
        let f = LshForest::new(32, 8);
        assert!(f.is_empty());
        assert!(f
            .query(&h.signature(MinHasher::synthetic_values(5, 10)), 32, 8)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_b_rejected() {
        let h = MinHasher::new(256);
        let f = LshForest::new(32, 8);
        let _ = f.query(&h.signature([1u64]), 33, 8);
    }

    #[test]
    #[should_panic(expected = "signature too short")]
    fn short_signature_rejected() {
        let h = MinHasher::new(64);
        let mut f = LshForest::new(32, 8); // needs 256 slots
        f.insert(1, &h.signature([1u64, 2, 3]));
    }

    #[test]
    fn memory_accounting_positive_after_inserts() {
        let h = MinHasher::new(256);
        let f = forest_with(&h, &[(1, MinHasher::synthetic_values(4, 50))], true);
        assert!(f.memory_bytes() > 0);
    }

    #[test]
    fn remove_drops_committed_and_staged_rows() {
        let h = MinHasher::new(256);
        let a = MinHasher::synthetic_values(1, 60);
        let b = MinHasher::synthetic_values(2, 70);
        let c = MinHasher::synthetic_values(3, 80);
        let mut f = forest_with(&h, &[(1, a.clone()), (2, b.clone())], true);
        f.insert(3, &h.signature(c.iter().copied())); // staged
        assert_eq!(f.len(), 3);
        assert!(f.contains(2) && f.contains(3));

        // Remove a committed entry.
        assert!(f.remove(2));
        assert_eq!(f.len(), 2);
        assert!(!f.contains(2));
        assert!(f.query(&h.signature(b), 32, 8).is_empty());
        // Remove a staged entry: staged count shrinks too.
        assert_eq!(f.staged_len(), 1);
        assert!(f.remove(3));
        assert_eq!(f.staged_len(), 0);
        assert!(f.query(&h.signature(c), 32, 8).is_empty());
        // The survivor is untouched, before and after a commit.
        assert!(f.query(&h.signature(a.clone()), 32, 8).contains(&1));
        f.commit();
        assert!(f.query(&h.signature(a), 32, 8).contains(&1));
        // Removing an absent id reports false and changes nothing.
        assert!(!f.remove(42));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn remove_keeps_sorted_runs_queryable() {
        let h = MinHasher::new(256);
        let domains: Vec<(DomainId, Vec<u64>)> = (0..40)
            .map(|i| (i, MinHasher::synthetic_values(500 + u64::from(i), 90)))
            .collect();
        let mut f = forest_with(&h, &domains, true);
        for id in (0..40).step_by(3) {
            assert!(f.remove(id));
        }
        for (id, vals) in &domains {
            let got = f.query(&h.signature(vals.iter().copied()), 32, 8);
            if id % 3 == 0 {
                assert!(!got.contains(id), "removed {id} still found");
            } else {
                assert!(got.contains(id), "survivor {id} lost");
            }
        }
        assert_eq!(f.len(), domains.len() - (0..40).step_by(3).count());
    }

    #[test]
    fn ids_iterates_committed_and_staged() {
        let h = MinHasher::new(256);
        let mut f = forest_with(
            &h,
            &[
                (5, MinHasher::synthetic_values(1, 30)),
                (9, MinHasher::synthetic_values(2, 30)),
            ],
            true,
        );
        f.insert(7, &h.signature(MinHasher::synthetic_values(3, 30)));
        let mut ids: Vec<DomainId> = f.ids().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![5, 7, 9]);
    }

    #[test]
    fn duplicate_rows_all_returned() {
        // Two domains with identical values share every bucket.
        let h = MinHasher::new(256);
        let vals = MinHasher::synthetic_values(8, 64);
        let f = forest_with(&h, &[(1, vals.clone()), (2, vals.clone())], true);
        let got = f.query(&h.signature(vals), 16, 8);
        assert!(got.contains(&1) && got.contains(&2));
    }
}
