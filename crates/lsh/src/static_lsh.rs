//! Classic banded MinHash LSH with a fixed `(b, r)` configuration (§3.2).
//!
//! The signature is split into `b` bands of `r` slots; each band is hashed
//! to a bucket, and any domain sharing at least one bucket with the query is
//! a candidate. The collision curve is Eq. 5: `P(s) = 1 − (1 − s^r)^b`.

use crate::DomainId;
use lshe_minhash::hash::{FastBuildHasher, FastHashMap, FastHashSet};
use lshe_minhash::Signature;
use std::hash::{BuildHasher, Hash, Hasher};

/// A fixed-parameter banded MinHash LSH index.
///
/// Use this when the Jaccard threshold is known at build time. For
/// query-dependent thresholds — the containment-search setting — use
/// [`crate::LshForest`] instead.
#[derive(Debug, Clone)]
pub struct MinHashLsh {
    b: usize,
    r: usize,
    /// One bucket map per band: band-hash → ids sharing that bucket.
    bands: Vec<FastHashMap<u64, Vec<DomainId>>>,
    len: usize,
}

impl MinHashLsh {
    /// Creates an index with `b` bands of `r` rows. Signatures inserted or
    /// queried must have at least `b·r` slots; extra slots are ignored.
    ///
    /// # Panics
    /// Panics if `b == 0` or `r == 0`.
    #[must_use]
    pub fn new(b: usize, r: usize) -> Self {
        assert!(b > 0 && r > 0, "banding parameters must be positive");
        Self {
            b,
            r,
            bands: (0..b).map(|_| FastHashMap::default()).collect(),
            len: 0,
        }
    }

    /// Chooses `(b, r)` for a target Jaccard threshold `s*` given a budget of
    /// `m` hash functions, by minimising `|implicit_threshold(b,r) − s*|`
    /// over all pairs with `b·r ≤ m`.
    ///
    /// # Panics
    /// Panics if `m == 0` or `s_star` is outside `(0, 1]`.
    #[must_use]
    pub fn params_for_threshold(m: usize, s_star: f64) -> (usize, usize) {
        assert!(m > 0, "need at least one hash function");
        assert!(s_star > 0.0 && s_star <= 1.0, "threshold must be in (0, 1]");
        let mut best = (1, 1);
        let mut best_err = f64::INFINITY;
        for r in 1..=m {
            let max_b = m / r;
            for b in 1..=max_b {
                let err = (crate::implicit_threshold(b as u32, r as u32) - s_star).abs();
                if err < best_err {
                    best_err = err;
                    best = (b, r);
                }
            }
        }
        best
    }

    /// Number of bands.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// Rows per band.
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn band_hash(band: &[u64]) -> u64 {
        let mut h = FastBuildHasher.build_hasher();
        for v in band {
            v.hash(&mut h);
        }
        h.finish()
    }

    /// Indexes a domain's signature under `id`.
    ///
    /// Inserting the same id twice simply registers it in both generations
    /// of buckets; callers are expected to assign unique ids.
    ///
    /// # Panics
    /// Panics if the signature has fewer than `b·r` slots.
    pub fn insert(&mut self, id: DomainId, sig: &Signature) {
        assert!(
            sig.len() >= self.b * self.r,
            "signature too short: {} < {}",
            sig.len(),
            self.b * self.r
        );
        let slots = sig.slots();
        for (band_idx, band) in self.bands.iter_mut().enumerate() {
            let start = band_idx * self.r;
            let key = Self::band_hash(&slots[start..start + self.r]);
            band.entry(key).or_default().push(id);
        }
        self.len += 1;
    }

    /// Collects the candidate set for a query signature.
    ///
    /// # Panics
    /// Panics if the signature has fewer than `b·r` slots.
    #[must_use]
    pub fn query(&self, sig: &Signature) -> FastHashSet<DomainId> {
        let mut out = FastHashSet::default();
        self.query_into(sig, &mut out);
        out
    }

    /// Like [`query`](Self::query) but reuses a caller-provided set, which
    /// avoids re-allocating across a batch of queries.
    pub fn query_into(&self, sig: &Signature, out: &mut FastHashSet<DomainId>) {
        assert!(
            sig.len() >= self.b * self.r,
            "signature too short: {} < {}",
            sig.len(),
            self.b * self.r
        );
        let slots = sig.slots();
        for (band_idx, band) in self.bands.iter().enumerate() {
            let start = band_idx * self.r;
            let key = Self::band_hash(&slots[start..start + self.r]);
            if let Some(ids) = band.get(&key) {
                out.extend(ids.iter().copied());
            }
        }
    }

    /// Total number of occupied buckets across bands (diagnostics).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.bands.iter().map(FastHashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_minhash::MinHasher;

    fn hasher() -> MinHasher {
        MinHasher::new(128)
    }

    #[test]
    fn exact_duplicate_always_candidate() {
        let h = hasher();
        let vals = MinHasher::synthetic_values(1, 300);
        let sig = h.signature(vals);
        let mut lsh = MinHashLsh::new(16, 8);
        lsh.insert(7, &sig);
        assert!(lsh.query(&sig).contains(&7));
    }

    #[test]
    fn disjoint_domain_rarely_candidate() {
        let h = hasher();
        let a = h.signature(MinHasher::synthetic_values(1, 300));
        let b = h.signature(MinHasher::synthetic_values(2, 300));
        let mut lsh = MinHashLsh::new(16, 8);
        lsh.insert(1, &a);
        // P(candidate) = 1-(1-s^8)^16 with s ≈ 0 → essentially 0.
        assert!(!lsh.query(&b).contains(&1));
    }

    #[test]
    fn high_similarity_usually_candidate() {
        let h = hasher();
        let base = MinHasher::synthetic_values(3, 1000);
        let mut lsh = MinHashLsh::new(32, 4);
        lsh.insert(1, &h.signature(base.iter().copied()));
        // 95% overlapping variant: s ≈ 0.905; P ≈ 1-(1-0.67)^32 ≈ 1.
        let mut variant = base.clone();
        variant.truncate(950);
        variant.extend(MinHasher::synthetic_values(4, 50));
        let q = h.signature(variant);
        assert!(lsh.query(&q).contains(&1));
    }

    #[test]
    fn len_tracks_inserts() {
        let h = hasher();
        let mut lsh = MinHashLsh::new(8, 4);
        assert!(lsh.is_empty());
        for i in 0..10 {
            lsh.insert(
                i,
                &h.signature(MinHasher::synthetic_values(u64::from(i), 20)),
            );
        }
        assert_eq!(lsh.len(), 10);
        assert!(!lsh.is_empty());
    }

    #[test]
    fn params_for_threshold_respects_budget() {
        for &(m, s) in &[(256usize, 0.5f64), (128, 0.9), (64, 0.1), (16, 0.7)] {
            let (b, r) = MinHashLsh::params_for_threshold(m, s);
            assert!(b * r <= m, "b={b} r={r} exceeds m={m}");
            let t = crate::implicit_threshold(b as u32, r as u32);
            assert!((t - s).abs() < 0.25, "m={m} s={s} got threshold {t}");
        }
    }

    #[test]
    fn query_into_reuses_buffer() {
        let h = hasher();
        let sig = h.signature(MinHasher::synthetic_values(9, 50));
        let mut lsh = MinHashLsh::new(8, 4);
        lsh.insert(1, &sig);
        let mut buf = lshe_minhash::hash::FastHashSet::default();
        lsh.query_into(&sig, &mut buf);
        assert!(buf.contains(&1));
        buf.clear();
        lsh.query_into(&sig, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    #[should_panic(expected = "signature too short")]
    fn short_signature_rejected() {
        let h = MinHasher::new(16);
        let sig = h.signature([1u64, 2, 3]);
        let mut lsh = MinHashLsh::new(8, 4); // needs 32 slots
        lsh.insert(1, &sig);
    }

    #[test]
    fn empirical_collision_curve_matches_eq5() {
        // Build many (query, domain) pairs at a controlled Jaccard and
        // check the measured candidate rate against Eq. 5 within noise.
        let m = 128;
        let (b, r) = (16, 8);
        let h = MinHasher::new(m);
        let target_s = 0.7f64;
        let n_pairs = 300;
        let mut hits = 0usize;
        for i in 0..n_pairs {
            // |A| = |B| = 400, overlap o chosen so o/(800-o) = s ⇒
            // o = 800·s/(1+s); each side adds 400 − o private values.
            let o = (800.0 * target_s / (1.0 + target_s)).round() as usize;
            let shared = MinHasher::synthetic_values(1000 + i, o);
            let ax = MinHasher::synthetic_values(5000 + i, 400 - o);
            let bx = MinHasher::synthetic_values(9000 + i, 400 - o);
            let a: Vec<u64> = shared.iter().chain(ax.iter()).copied().collect();
            let bvals: Vec<u64> = shared.iter().chain(bx.iter()).copied().collect();
            let mut lsh = MinHashLsh::new(b, r);
            lsh.insert(0, &h.signature(a));
            if lsh.query(&h.signature(bvals)).contains(&0) {
                hits += 1;
            }
        }
        let measured = hits as f64 / n_pairs as f64;
        let expected = crate::candidate_probability(target_s, b as u32, r as u32);
        assert!(
            (measured - expected).abs() < 0.12,
            "measured {measured}, Eq.5 predicts {expected}"
        );
    }
}
