//! # lshe-lsh
//!
//! Locality Sensitive Hashing indexes over MinHash signatures, the substrate
//! beneath the LSH Ensemble (§3.2 and §5.5 of the paper):
//!
//! * [`static_lsh::MinHashLsh`] — the classic banded index with a fixed
//!   `(b, r)` configuration and therefore a fixed implicit Jaccard threshold
//!   `s* ≈ (1/b)^(1/r)` (Eq. 21). Used by ablations and as a reference in
//!   tests.
//! * [`forest::LshForest`] — the dynamic index (LSH Forest, Bawa et al.):
//!   `b_max` prefix trees of depth `r_max`, with the *effective* `(b, r)`
//!   chosen per query. This is what each LSH Ensemble partition uses so the
//!   Jaccard threshold can vary with the query (§5.5).
//!
//! Both indexes return **candidate sets**: supersets-with-errors of the true
//! similarity neighbourhood, to be post-filtered or consumed as-is depending
//! on the application (the paper's evaluation consumes them as-is).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod forest;
pub mod persist;
pub mod static_lsh;

pub use forest::LshForest;
pub use static_lsh::MinHashLsh;

/// Identifier of an indexed domain.
///
/// `u32` bounds a single index at ~4.29 billion domains — an order of
/// magnitude above the paper's largest corpus (262,893,406 domains) — while
/// halving id-array memory relative to `u64`.
pub type DomainId = u32;

/// Probability that a domain at Jaccard similarity `s` becomes a candidate
/// under banding parameters `(b, r)` (Eq. 5):
///
/// ```text
/// P(s | b, r) = 1 − (1 − s^r)^b
/// ```
///
/// # Panics
/// Panics if `b` or `r` is zero, or if `s` is outside `[0, 1]`.
#[must_use]
pub fn candidate_probability(s: f64, b: u32, r: u32) -> f64 {
    assert!(b > 0 && r > 0, "banding parameters must be positive");
    assert!((0.0..=1.0).contains(&s), "similarity must be in [0, 1]");
    1.0 - (1.0 - s.powi(r as i32)).powi(b as i32)
}

/// The implicit Jaccard threshold of a fixed `(b, r)` configuration — the
/// similarity at which [`candidate_probability`] crosses ½ steeply —
/// approximated as `(1/b)^(1/r)` (Eq. 21).
#[must_use]
pub fn implicit_threshold(b: u32, r: u32) -> f64 {
    assert!(b > 0 && r > 0, "banding parameters must be positive");
    (1.0 / f64::from(b)).powf(1.0 / f64::from(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_probability_boundaries() {
        assert_eq!(candidate_probability(0.0, 32, 8), 0.0);
        assert!((candidate_probability(1.0, 32, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn candidate_probability_monotone_in_s() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let s = f64::from(i) / 100.0;
            let p = candidate_probability(s, 16, 4);
            assert!(p >= prev - 1e-15);
            prev = p;
        }
    }

    #[test]
    fn candidate_probability_monotone_in_b() {
        let s = 0.4;
        let mut prev = 0.0;
        for b in 1..=64 {
            let p = candidate_probability(s, b, 4);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn more_rows_sharpen_the_curve() {
        // Raising r lowers the candidate probability at fixed s < 1, b.
        let s = 0.5;
        assert!(candidate_probability(s, 16, 8) < candidate_probability(s, 16, 2));
    }

    #[test]
    fn implicit_threshold_half_probability() {
        // At s = implicit_threshold, expected bucket hits b·s^r = 1, so
        // P = 1 − (1 − 1/b)^b ≈ 1 − 1/e ≈ 0.63.
        for &(b, r) in &[(32u32, 8u32), (16, 4), (256, 4)] {
            let s = implicit_threshold(b, r);
            let p = candidate_probability(s, b, r);
            assert!(
                (p - (1.0 - (-1.0f64).exp())).abs() < 0.05,
                "b={b} r={r} p={p}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_band_rejected() {
        let _ = candidate_probability(0.5, 0, 4);
    }
}
