//! Binary persistence for [`LshForest`].
//!
//! The forest is the bulk of an LSH Ensemble's state; serialising it lets a
//! server build an index once and serve it from disk thereafter. Format
//! (little-endian, see `lshe_minhash::codec` for primitives):
//!
//! ```text
//! "LSHF" version:u8
//! b_max:u32 r_max:u32 len:u64
//! per tree (b_max times):
//!     keys:  u64 count, count × u32
//!     ids:   u64 count, count × u32
//! ```
//!
//! Only *committed* state is stored: [`LshForest::to_bytes`] requires the
//! staged tail to be empty (call [`LshForest::commit`] first), which keeps
//! the format canonical — two forests with the same contents serialise to
//! identical bytes.

use crate::forest::LshForest;
use crate::DomainId;
use lshe_minhash::codec::{CodecError, Decoder, Encoder};

/// Envelope tag for forest payloads.
pub const MAGIC: [u8; 4] = *b"LSHF";
/// Current format version.
pub const VERSION: u8 = 1;

impl LshForest {
    /// Serialises the committed forest.
    ///
    /// # Panics
    /// Panics if staged inserts exist — commit first so the byte form is
    /// canonical.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        assert_eq!(self.staged_len(), 0, "commit the forest before serialising");
        let mut enc = Encoder::with_capacity(32 + self.memory_bytes());
        enc.envelope(MAGIC, VERSION);
        enc.put_u32(self.b_max() as u32);
        enc.put_u32(self.r_max() as u32);
        enc.put_u64(self.len() as u64);
        for tree in self.raw_trees() {
            enc.put_u32_slice(tree.0);
            enc.put_u32_slice(tree.1);
        }
        enc.finish()
    }

    /// Deserialises a forest.
    ///
    /// # Errors
    /// [`CodecError`] on truncation, tag/version mismatch, or structural
    /// inconsistencies (key/id count mismatch, wrong tree count).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes);
        let version = dec.envelope(MAGIC)?;
        if version > VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let b_max = dec.get_u32("b_max")? as usize;
        let r_max = dec.get_u32("r_max")? as usize;
        let len = dec.get_u64("len")? as usize;
        if b_max == 0 || r_max == 0 {
            return Err(CodecError::Corrupt("zero forest dimensions"));
        }
        let mut trees = Vec::with_capacity(b_max);
        for _ in 0..b_max {
            let keys = dec.get_u32_vec("tree keys")?;
            let ids: Vec<DomainId> = dec.get_u32_vec("tree ids")?;
            if keys.len() != ids.len() * r_max {
                return Err(CodecError::Corrupt("key rows do not match id count"));
            }
            if ids.len() != len {
                return Err(CodecError::Corrupt("tree size does not match forest len"));
            }
            trees.push((keys, ids));
        }
        if !dec.is_exhausted() {
            return Err(CodecError::Corrupt("trailing bytes after forest"));
        }
        Ok(Self::from_raw_trees(b_max, r_max, len, trees))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_minhash::MinHasher;

    fn sample_forest(n: usize) -> (MinHasher, LshForest, Vec<Vec<u64>>) {
        let h = MinHasher::new(256);
        let mut f = LshForest::new(32, 8);
        let mut values = Vec::new();
        for i in 0..n {
            let vals = MinHasher::synthetic_values(i as u64, 60);
            f.insert(i as u32, &h.signature(vals.iter().copied()));
            values.push(vals);
        }
        f.commit();
        (h, f, values)
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let (h, forest, values) = sample_forest(200);
        let bytes = forest.to_bytes();
        let restored = LshForest::from_bytes(&bytes).expect("decode");
        assert_eq!(restored.len(), forest.len());
        for vals in values.iter().take(20) {
            let sig = h.signature(vals.iter().copied());
            for &(b, r) in &[(32usize, 8usize), (8, 4), (1, 1)] {
                assert_eq!(forest.query(&sig, b, r), restored.query(&sig, b, r));
            }
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let (_, forest, _) = sample_forest(50);
        let bytes = forest.to_bytes();
        let restored = LshForest::from_bytes(&bytes).expect("decode");
        assert_eq!(restored.to_bytes(), bytes, "canonical form must be stable");
    }

    #[test]
    fn restored_forest_accepts_new_inserts() {
        let (h, forest, _) = sample_forest(30);
        let mut restored = LshForest::from_bytes(&forest.to_bytes()).expect("decode");
        let vals = MinHasher::synthetic_values(999, 40);
        let sig = h.signature(vals.iter().copied());
        restored.insert(777, &sig);
        assert!(restored.query(&sig, 32, 8).contains(&777));
        restored.commit();
        assert!(restored.query(&sig, 32, 8).contains(&777));
    }

    #[test]
    #[should_panic(expected = "commit the forest")]
    fn staged_forest_refuses_serialisation() {
        let h = MinHasher::new(256);
        let mut f = LshForest::new(32, 8);
        f.insert(1, &h.signature(MinHasher::synthetic_values(1, 10)));
        let _ = f.to_bytes();
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let (_, forest, _) = sample_forest(10);
        let bytes = forest.to_bytes();
        for cut in [0usize, 4, 5, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                LshForest::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (_, forest, _) = sample_forest(5);
        let mut bytes = forest.to_bytes();
        bytes.push(0);
        assert_eq!(
            LshForest::from_bytes(&bytes).unwrap_err(),
            CodecError::Corrupt("trailing bytes after forest")
        );
    }

    #[test]
    fn wrong_magic_rejected() {
        let (_, forest, _) = sample_forest(5);
        let mut bytes = forest.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            LshForest::from_bytes(&bytes).unwrap_err(),
            CodecError::BadMagic { .. }
        ));
    }

    #[test]
    fn inconsistent_tree_size_rejected() {
        // Hand-craft a payload whose second tree has the wrong id count.
        let mut enc = Encoder::default();
        enc.envelope(MAGIC, VERSION);
        enc.put_u32(2); // b_max
        enc.put_u32(1); // r_max
        enc.put_u64(1); // len
        enc.put_u32_slice(&[5]); // tree 0 keys (1 row × r_max 1)
        enc.put_u32_slice(&[9]); // tree 0 ids
        enc.put_u32_slice(&[5, 6]); // tree 1 keys: 2 rows — wrong
        enc.put_u32_slice(&[9, 10]);
        let err = LshForest::from_bytes(&enc.finish()).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)));
    }
}
