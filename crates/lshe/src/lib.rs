//! # lshe — LSH Ensemble, Internet-Scale Domain Search
//!
//! Facade crate for the workspace reproducing **LSH Ensemble** (Zhu,
//! Nargesian, Pu & Miller, *LSH Ensemble: Internet-Scale Domain Search*,
//! VLDB 2016). It re-exports every layer under one roof so downstream
//! users can depend on a single crate:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`minhash`] | `lshe-minhash` | hashing, permutations, MinHash/OPH signatures |
//! | [`lsh`] | `lshe-lsh` | static banded LSH and dynamic LSH Forest |
//! | [`asym`] | `lshe-asym` | asymmetric minwise-hashing baseline (§6.1) |
//! | [`core`] | `lshe-core` | the ensemble: partitioning, tuning, querying |
//! | [`corpus`] | `lshe-corpus` | CSV/JSONL ingestion, catalogs, exact baselines |
//! | [`datagen`] | `lshe-datagen` | synthetic power-law corpora and queries |
//! | [`serve`] | `lshe-serve` | the HTTP query server: snapshot engine, LRU cache, batching |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Quick example
//!
//! ```
//! use lshe::{LshEnsemble, MinHasher};
//!
//! let hasher = MinHasher::new(256);
//! let mut builder = LshEnsemble::builder();
//! let pool = MinHasher::synthetic_values(1, 300);
//! for (id, n) in [(0u32, 100usize), (1, 200), (2, 300)] {
//!     builder.add(id, n as u64, hasher.signature(pool[..n].iter().copied()));
//! }
//! let ensemble = builder.build();
//!
//! // Query with the first 100 values at containment threshold 0.5: domain 0
//! // (identical to the query) must be among the candidates.
//! let q = hasher.signature(pool[..100].iter().copied());
//! let hits = ensemble.query_with_size(&q, 100, 0.5);
//! assert!(hits.contains(&0));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use lshe_asym as asym;
pub use lshe_core as core;
pub use lshe_corpus as corpus;
pub use lshe_datagen as datagen;
pub use lshe_lsh as lsh;
pub use lshe_minhash as minhash;
pub use lshe_serve as serve;

pub use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy};
pub use lshe_corpus::{Catalog, Domain};
pub use lshe_lsh::{DomainId, LshForest};
pub use lshe_minhash::{MinHasher, OnePermHasher, Signature};
pub use lshe_serve::{IndexContainer, ServerConfig};
