//! # lshe — LSH Ensemble, Internet-Scale Domain Search
//!
//! Facade crate for the workspace reproducing **LSH Ensemble** (Zhu,
//! Nargesian, Pu & Miller, *LSH Ensemble: Internet-Scale Domain Search*,
//! VLDB 2016). It re-exports every layer under one roof so downstream
//! users can depend on a single crate:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`minhash`] | `lshe-minhash` | hashing, permutations, MinHash/OPH signatures |
//! | [`lsh`] | `lshe-lsh` | static banded LSH and dynamic LSH Forest |
//! | [`asym`] | `lshe-asym` | asymmetric minwise-hashing baseline (§6.1) |
//! | [`core`] | `lshe-core` | the ensemble: partitioning, tuning, querying |
//! | [`corpus`] | `lshe-corpus` | CSV/JSONL ingestion, catalogs, exact baselines |
//! | [`datagen`] | `lshe-datagen` | synthetic power-law corpora and queries |
//! | [`serve`] | `lshe-serve` | the HTTP query server: snapshot engine, LRU cache, batching |
//! | [`cluster`] | `lshe-cluster` | multi-node scatter/gather coordinator over the shard protocol |
//!
//! The most common entry points are re-exported at the top level. The
//! documented way in is the **unified query surface**: build any index,
//! hold it as a [`DomainIndex`], and hand it typed [`Query`]s — the same
//! surface the CLI, the HTTP server, and the experiment harness use.
//!
//! ## Quick example
//!
//! ```
//! use lshe::{DomainIndex, MinHasher, Query, RankedIndex};
//!
//! // Index three nested domains (id, exact size, MinHash signature),
//! // retaining sketches so estimates and top-k work.
//! let hasher = MinHasher::new(256);
//! let pool = MinHasher::synthetic_values(1, 300);
//! let mut builder = RankedIndex::builder();
//! for (id, n) in [(0u32, 100usize), (1, 200), (2, 300)] {
//!     builder.add(id, n as u64, hasher.signature(pool[..n].iter().copied()));
//! }
//! let index: Box<dyn DomainIndex> = Box::new(builder.build());
//!
//! // Threshold search: which domains contain ≥ 50% of the query?
//! // Domain 0 is identical to the query, so it must be found with
//! // estimated containment 1.0.
//! let sig = hasher.signature(pool[..100].iter().copied());
//! let outcome = index
//!     .search(&Query::threshold(&sig, 0.5).with_size(100))
//!     .expect("valid query");
//! assert!(outcome.hits.iter().any(|h| h.id == 0 && h.estimate == Some(1.0)));
//!
//! // Top-k through the very same surface, with per-query stats.
//! let top = index
//!     .search(&Query::top_k(&sig, 2).with_size(100))
//!     .expect("valid query");
//! assert_eq!(top.hits.len(), 2);
//! assert!(top.stats.partitions_probed <= top.stats.partitions_total);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use lshe_asym as asym;
pub use lshe_cluster as cluster;
pub use lshe_core as core;
pub use lshe_corpus as corpus;
pub use lshe_datagen as datagen;
pub use lshe_lsh as lsh;
pub use lshe_minhash as minhash;
pub use lshe_serve as serve;

pub use lshe_core::{
    CommitReport, DomainIndex, EnsembleConfig, ForestIndex, LshEnsemble, MutableIndex,
    MutationError, PartitionStrategy, Query, QueryError, QueryMode, QueryStats, RankedHit,
    RankedIndex, SearchHit, SearchOutcome, ShardedEnsemble, ShardedRanked,
    DEFAULT_REBALANCE_TRIGGER, ESTIMATE_SLACK,
};
pub use lshe_corpus::{Catalog, Domain, ExactIndex};
pub use lshe_lsh::{DomainId, LshForest};
pub use lshe_minhash::{MinHasher, OnePermHasher, Signature};
pub use lshe_serve::{DeltaLog, DeltaOp, IndexContainer, IndexKind, ServerConfig};
