//! Dynamic data (§6.2): domains added after construction must be
//! immediately searchable, boundary growth must stay conservative, and a
//! drifted corpus must keep answering correctly (if less precisely) until
//! rebuilt.

use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_datagen::{generate_catalog, CorpusConfig};
use lshe_minhash::{MinHasher, Signature};

fn build_world(n: usize, seed: u64) -> (LshEnsemble, Vec<Signature>, Vec<u64>, MinHasher) {
    let catalog = generate_catalog(&CorpusConfig::tiny(n, seed));
    let hasher = MinHasher::new(256);
    let signatures: Vec<Signature> = catalog.iter().map(|(_, d)| d.signature(&hasher)).collect();
    let ids: Vec<u32> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let refs: Vec<&Signature> = signatures.iter().collect();
    let ens = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 8 },
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &refs,
    );
    (ens, signatures, sizes, hasher)
}

#[test]
fn inserts_visible_before_and_after_commit() {
    let (mut ens, _, _, hasher) = build_world(500, 1);
    let base_len = ens.len();
    let mut new_sigs = Vec::new();
    for i in 0..50u32 {
        let vals = MinHasher::synthetic_values(9_000 + u64::from(i), 40 + i as usize);
        let sig = hasher.signature(vals.iter().copied());
        ens.insert(10_000 + i, vals.len() as u64, &sig);
        new_sigs.push((10_000 + i, vals.len() as u64, sig));
    }
    assert_eq!(ens.len(), base_len + 50);
    // Visible while staged.
    for (id, size, sig) in &new_sigs {
        assert!(
            ens.query_with_size(sig, *size, 1.0).contains(id),
            "staged insert {id} not found"
        );
    }
    ens.commit();
    // Still visible after merge.
    for (id, size, sig) in &new_sigs {
        assert!(
            ens.query_with_size(sig, *size, 1.0).contains(id),
            "committed insert {id} not found"
        );
    }
}

#[test]
fn original_domains_survive_heavy_insertion() {
    let (mut ens, signatures, sizes, hasher) = build_world(500, 2);
    for i in 0..500u32 {
        let vals = MinHasher::synthetic_values(50_000 + u64::from(i), 30);
        ens.insert(20_000 + i, 30, &hasher.signature(vals.iter().copied()));
    }
    ens.commit();
    for q in (0..500u32).step_by(61) {
        let hits = ens.query_with_size(&signatures[q as usize], sizes[q as usize], 1.0);
        assert!(hits.contains(&q), "original domain {q} lost after drift");
    }
}

#[test]
fn oversized_insert_grows_boundary_conservatively() {
    let (mut ens, _, _, hasher) = build_world(300, 3);
    let before = ens.partition_stats();
    let old_max = before.last().expect("partitions").upper;
    // Insert a domain 10× larger than anything indexed.
    let huge = MinHasher::synthetic_values(777, (old_max * 10) as usize);
    let sig = hasher.signature(huge.iter().copied());
    ens.insert(99_999, old_max * 10, &sig);
    let after = ens.partition_stats();
    assert_eq!(after.last().expect("partitions").upper, old_max * 10);
    // Conservative conversion: the enlarged bound must still find the new
    // domain (u only grew, so s* only shrank — no new false negatives).
    assert!(ens
        .query_with_size(&sig, old_max * 10, 0.9)
        .contains(&99_999));
}

#[test]
fn undersized_insert_extends_first_partition() {
    let (mut ens, _, _, hasher) = build_world(300, 4);
    let before_lower = ens.partition_stats()[0].lower;
    assert!(before_lower > 1);
    let tiny = MinHasher::synthetic_values(88, 1);
    let sig = hasher.signature(tiny.iter().copied());
    ens.insert(88_888, 1, &sig);
    // While staged/sealed, the tiny domain is covered by its own tier…
    assert_eq!(
        ens.partition_stats()
            .iter()
            .map(|p| p.lower)
            .min()
            .expect("partitions"),
        1
    );
    assert!(ens.query_with_size(&sig, 1, 1.0).contains(&88_888));
    // …and compaction folds it into the base, extending the first
    // partition's boundary downward (§6.2 conservative growth).
    ens.commit();
    ens.compact();
    assert_eq!(ens.partition_stats()[0].lower, 1);
    assert!(ens.query_with_size(&sig, 1, 1.0).contains(&88_888));
}

#[test]
fn rebuild_restores_balanced_partitions_after_drift() {
    // After heavy drift, partition member counts diverge; a rebuild through
    // a fresh builder restores equi-depth balance (the §6.2 remedy).
    let (mut ens, signatures, sizes, hasher) = build_world(400, 5);
    let mut all: Vec<(u32, u64, Signature)> = signatures
        .iter()
        .enumerate()
        .map(|(i, s)| (i as u32, sizes[i], s.clone()))
        .collect();
    for i in 0..400u32 {
        let vals = MinHasher::synthetic_values(70_000 + u64::from(i), 500 + i as usize);
        let sig = hasher.signature(vals.iter().copied());
        ens.insert(30_000 + i, vals.len() as u64, &sig);
        all.push((30_000 + i, vals.len() as u64, sig));
    }
    ens.commit();
    // Compaction folds the sealed segment into the base by size: every new
    // domain routes to the boundary partition, skewing the counts — the
    // drift that §6.2's rebuild remedies.
    ens.compact();
    let drifted_spread = spread(&ens);

    let ids: Vec<u32> = all.iter().map(|e| e.0).collect();
    let szs: Vec<u64> = all.iter().map(|e| e.1).collect();
    let refs: Vec<&Signature> = all.iter().map(|e| &e.2).collect();
    let rebuilt = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 8 },
            ..EnsembleConfig::default()
        },
        &ids,
        &szs,
        &refs,
    );
    let rebuilt_spread = spread(&rebuilt);
    assert!(
        rebuilt_spread < drifted_spread,
        "rebuild should rebalance: {rebuilt_spread} vs {drifted_spread}"
    );
}

fn spread(ens: &LshEnsemble) -> f64 {
    let counts: Vec<f64> = ens
        .partition_stats()
        .iter()
        .map(|p| p.count as f64)
        .collect();
    let mean = counts.iter().sum::<f64>() / counts.len() as f64;
    (counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64).sqrt()
}
