//! Property-based invariants spanning the workspace crates (proptest).

use lshe_core::{convert, cost, Partitioning, Tuner};
use lshe_corpus::Domain;
use lshe_minhash::{containment_from_jaccard, jaccard_from_containment, MinHasher};
use proptest::prelude::*;

proptest! {
    /// Eq. 6's two conversions are inverses on the valid containment range.
    #[test]
    fn conversion_roundtrip(
        x in 1u64..100_000,
        q in 1u64..100_000,
        t_frac in 0.0f64..=1.0,
    ) {
        let t = t_frac * (x as f64 / q as f64).min(1.0);
        let s = jaccard_from_containment(t, x as f64, q as f64);
        let back = containment_from_jaccard(s, x as f64, q as f64);
        prop_assert!((back - t).abs() < 1e-9, "t={t} s={s} back={back}");
    }

    /// The conservative threshold (Eq. 7) never exceeds the exact one.
    #[test]
    fn conservative_threshold_is_conservative(
        x in 1u64..10_000,
        extra in 0u64..10_000,
        q in 1u64..10_000,
        t in 0.01f64..=1.0,
    ) {
        let u = x + extra;
        let s_star = convert::jaccard_threshold(t, u, q);
        let exact = jaccard_from_containment(t, x as f64, q as f64);
        prop_assert!(s_star <= exact + 1e-12);
    }

    /// Effective threshold (Prop. 1) is within [0, t*] and hits t* at x = u.
    #[test]
    fn effective_threshold_bounds(
        x in 1u64..10_000,
        extra in 0u64..10_000,
        q in 1u64..10_000,
        t in 0.0f64..=1.0,
    ) {
        let u = x + extra;
        let tx = convert::effective_threshold(t, x, u, q);
        prop_assert!(tx >= 0.0 && tx <= t + 1e-12);
        let at_top = convert::effective_threshold(t, u, u, q);
        prop_assert!((at_top - t).abs() < 1e-12);
    }

    /// FP probability (Eq. 11 generalised) is a probability.
    #[test]
    fn fp_probability_is_probability(
        x in 1u64..5_000,
        extra in 0u64..5_000,
        q in 1u64..5_000,
        t in 0.0f64..=1.0,
    ) {
        let p = cost::fp_probability(t, x, x + extra, q);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// Every partitioning strategy covers all domains exactly once and
    /// keeps its structural invariants.
    #[test]
    fn partitionings_are_valid(
        sizes in prop::collection::vec(1u64..100_000, 1..300),
        n in 1usize..12,
        lambda in 0.0f64..=1.0,
    ) {
        Partitioning::equi_depth(&sizes, n).validate(&sizes);
        Partitioning::equi_width(&sizes, n).validate(&sizes);
        Partitioning::morph(&sizes, n, lambda).validate(&sizes);
        Partitioning::equi_fp(&sizes, n).validate(&sizes);
    }

    /// Equi-depth max false-positive bound never beats the equi-fp
    /// optimiser by more than numerical slack — equi-fp is the optimum the
    /// cost model defines.
    #[test]
    fn equi_fp_minimises_cost(
        sizes in prop::collection::vec(1u64..50_000, 24..200),
    ) {
        let n = 6;
        let opt = Partitioning::equi_fp(&sizes, n);
        let depth = Partitioning::equi_depth(&sizes, n);
        // The greedy/binary-search construction is near-optimal; allow a
        // tolerance factor for discreteness.
        prop_assert!(opt.max_fp_bound() <= depth.max_fp_bound() * 1.5 + 1.0);
    }

    /// Jaccard estimates stay within the 4σ binomial envelope of the exact
    /// value for random overlapping sets.
    #[test]
    fn minhash_estimate_concentrates(
        shared in 10usize..200,
        only_a in 0usize..200,
        only_b in 0usize..200,
        seed in 0u64..1_000,
    ) {
        let m = 256usize;
        let hasher = MinHasher::new(m);
        let sh = MinHasher::synthetic_values(seed, shared);
        let ax = MinHasher::synthetic_values(seed + 1_000_000, only_a);
        let bx = MinHasher::synthetic_values(seed + 2_000_000, only_b);
        let a: Vec<u64> = sh.iter().chain(ax.iter()).copied().collect();
        let b: Vec<u64> = sh.iter().chain(bx.iter()).copied().collect();
        let truth = shared as f64 / (shared + only_a + only_b) as f64;
        let est = hasher.signature(a).jaccard(&hasher.signature(b));
        let sigma = (truth * (1.0 - truth) / m as f64).sqrt();
        prop_assert!(
            (est - truth).abs() <= 5.0 * sigma + 0.02,
            "truth {truth}, est {est}"
        );
    }

    /// Domain exact operators agree with std set operations.
    #[test]
    fn domain_ops_match_std_sets(
        a in prop::collection::hash_set(0u64..500, 1..100),
        b in prop::collection::hash_set(0u64..500, 1..100),
    ) {
        let da = Domain::from_hashes(a.iter().copied().collect());
        let db = Domain::from_hashes(b.iter().copied().collect());
        let inter = a.intersection(&b).count();
        prop_assert_eq!(da.intersection_size(&db), inter);
        let t = inter as f64 / a.len() as f64;
        prop_assert!((da.containment_in(&db) - t).abs() < 1e-12);
        let union = a.union(&b).count();
        let j = inter as f64 / union as f64;
        prop_assert!((da.jaccard(&db) - j).abs() < 1e-12);
    }

    /// Tuned parameters always respect the forest grid.
    #[test]
    fn tuner_stays_in_grid(
        u in 1u64..1_000_000,
        q in 1u64..1_000_000,
        t in 0.0f64..=1.0,
    ) {
        let tuner = Tuner::new(32, 8);
        let p = tuner.optimize(u, q, t);
        prop_assert!(p.b >= 1 && p.b <= 32);
        prop_assert!(p.r >= 1 && p.r <= 8);
    }

    /// Signature union is order-independent and idempotent (it computes the
    /// set-union sketch).
    #[test]
    fn signature_union_semantics(
        n_a in 1usize..100,
        n_b in 1usize..100,
        seed in 0u64..1_000,
    ) {
        let hasher = MinHasher::new(64);
        let a = hasher.signature(MinHasher::synthetic_values(seed, n_a));
        let b = hasher.signature(MinHasher::synthetic_values(seed + 5_000_000, n_b));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    /// Decoders never panic on arbitrary garbage — they must return errors.
    #[test]
    fn decoders_reject_garbage_without_panicking(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = lshe_minhash::codec::signature_wire::decode(&bytes);
        let _ = lshe_lsh::LshForest::from_bytes(&bytes);
        let _ = lshe_core::LshEnsemble::from_bytes(&bytes);
        let _ = lshe_corpus::parse_json(&bytes);
    }

    /// Single-byte corruption of a valid index either still decodes (the
    /// flip hit payload data, which the format cannot distinguish) or
    /// errors cleanly — it must never panic.
    #[test]
    fn index_bytes_survive_mutation_without_panicking(
        flip_pos_seed in 0usize..10_000,
        n_domains in 2usize..20,
    ) {
        let hasher = MinHasher::new(64);
        let mut builder = lshe_core::LshEnsemble::builder_with(lshe_core::EnsembleConfig {
            num_perm: 64,
            b_max: 8,
            r_max: 8,
            strategy: lshe_core::PartitionStrategy::EquiDepth { n: 2 },
        });
        for k in 0..n_domains {
            let vals = MinHasher::synthetic_values(k as u64, 10 + k);
            builder.add(k as u32, vals.len() as u64, hasher.signature(vals));
        }
        let mut ens = builder.build();
        let mut bytes = ens.to_bytes();
        let pos = flip_pos_seed % bytes.len();
        bytes[pos] ^= 0x5A;
        let _ = lshe_core::LshEnsemble::from_bytes(&bytes); // must not panic
    }

    /// The JSON parser round-trips scalar values it produced itself.
    #[test]
    fn json_scalar_roundtrip(s in "[a-zA-Z0-9 _.-]{0,40}") {
        let encoded = format!("\"{s}\"");
        let parsed = lshe_corpus::parse_json(encoded.as_bytes()).expect("valid string literal");
        prop_assert_eq!(parsed, lshe_corpus::JsonValue::String(s));
    }

    /// OPH and classic sketches agree (within their respective variances)
    /// on Jaccard for the same underlying sets.
    #[test]
    fn oph_and_classic_agree_on_jaccard(
        shared in 50usize..200,
        distinct in 0usize..200,
        seed in 0u64..500,
    ) {
        let classic = MinHasher::new(256);
        let oph = lshe_minhash::OnePermHasher::new(256);
        let sh = MinHasher::synthetic_values(seed, shared);
        let ax = MinHasher::synthetic_values(seed + 7_000_000, distinct);
        let a: Vec<u64> = sh.iter().chain(ax.iter()).copied().collect();
        let b: Vec<u64> = sh.clone();
        let est_classic = classic.signature(a.iter().copied()).jaccard(&classic.signature(b.iter().copied()));
        let est_oph = oph.signature(a.into_iter()).jaccard(&oph.signature(b.into_iter()));
        // Both estimate J = shared/(shared+distinct). OPH's densified
        // slots have higher variance than classic slots; 0.4 is a ≥5σ
        // joint envelope that still catches systematic disagreement.
        prop_assert!((est_classic - est_oph).abs() < 0.4,
            "classic {est_classic} vs oph {est_oph}");
    }
}
