//! Cross-crate integration: persistence round-trips a generated-corpus
//! index without changing any answer, and ranked / top-k search agrees
//! with exact ground truth.

use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy, RankedIndex};
use lshe_corpus::ExactIndex;
use lshe_datagen::{generate_catalog, sample_queries, CorpusConfig, SizeBand};
use lshe_minhash::{codec::signature_wire, MinHasher, OnePermHasher, Signature};

fn world(n: usize, seed: u64) -> (lshe_corpus::Catalog, Vec<Signature>, ExactIndex, Vec<u32>) {
    let catalog = generate_catalog(&CorpusConfig::tiny(n, seed));
    let hasher = MinHasher::new(256);
    let signatures: Vec<Signature> = catalog.iter().map(|(_, d)| d.signature(&hasher)).collect();
    let exact = ExactIndex::build(&catalog);
    let queries = sample_queries(&catalog, 40, SizeBand::All, seed + 1);
    (catalog, signatures, exact, queries)
}

#[test]
fn persisted_index_answers_identically_on_generated_corpus() {
    let (catalog, signatures, _, queries) = world(800, 101);
    let ids: Vec<u32> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let refs: Vec<&Signature> = signatures.iter().collect();
    let mut original = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 8 },
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &refs,
    );
    let restored = LshEnsemble::from_bytes(&original.to_bytes()).expect("roundtrip");
    for &q in &queries {
        for t in [0.2, 0.5, 0.8, 1.0] {
            assert_eq!(
                original.query_with_size(&signatures[q as usize], sizes[q as usize], t),
                restored.query_with_size(&signatures[q as usize], sizes[q as usize], t),
                "query {q} diverged at t = {t} after persistence"
            );
        }
    }
}

#[test]
fn signature_wire_format_survives_client_server_exchange() {
    // Simulates the paper's deployment: the client sketches a query
    // locally, ships the wire bytes, and the server must get identical
    // search results from the decoded signature.
    let (catalog, signatures, _, queries) = world(400, 102);
    let ids: Vec<u32> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let refs: Vec<&Signature> = signatures.iter().collect();
    let index = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 4 },
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &refs,
    );
    for &q in queries.iter().take(10) {
        let wire = signature_wire::encode(&signatures[q as usize]);
        let received = signature_wire::decode(&wire).expect("decode");
        assert_eq!(
            index.query_with_size(&signatures[q as usize], sizes[q as usize], 0.6),
            index.query_with_size(&received, sizes[q as usize], 0.6),
        );
    }
}

#[test]
fn top_k_hits_are_the_exact_top_k_within_estimation_noise() {
    let (catalog, signatures, exact, queries) = world(600, 103);
    let mut builder = RankedIndex::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 8 },
        ..EnsembleConfig::default()
    });
    for (id, d) in catalog.iter() {
        builder.add(id, d.len() as u64, signatures[id as usize].clone());
    }
    let ranked = builder.build();

    for &q in queries.iter().take(15) {
        let query = catalog.domain(q);
        let hits = ranked.query_top_k(&signatures[q as usize], query.len() as u64, 5);
        assert!(!hits.is_empty());
        // The self-match (exact containment 1.0) must appear.
        assert!(
            hits.iter().any(|h| h.id == q),
            "query {q}: self missing from top-5 {hits:?}"
        );
        // Every reported hit must have substantial true containment —
        // estimates are noisy (±0.1 typical) but the top-5 of a corpus
        // with a guaranteed exact match should not contain near-zero
        // true scores.
        let scores = exact.scores(query);
        for h in &hits {
            let truth = scores
                .iter()
                .find(|&&(id, _)| id == h.id)
                .map_or(0.0, |&(_, s)| s);
            assert!(
                truth > 0.05 || h.estimated_containment < 0.3,
                "query {q}: hit {} has true containment {truth} but estimate {}",
                h.id,
                h.estimated_containment
            );
        }
    }
}

#[test]
fn ranked_estimates_close_to_exact_scores() {
    let (catalog, signatures, exact, queries) = world(500, 104);
    let m = signatures[0].len() as f64; // actual signature width
    let mut builder = RankedIndex::builder();
    for (id, d) in catalog.iter() {
        builder.add(id, d.len() as u64, signatures[id as usize].clone());
    }
    let ranked = builder.build();
    let mut worst: f64 = 0.0;
    for &q in queries.iter().take(15) {
        let query = catalog.domain(q);
        let scores = exact.scores(query);
        for h in ranked.query_ranked(&signatures[q as usize], query.len() as u64, 0.4, 0.2) {
            let truth = scores
                .iter()
                .find(|&&(id, _)| id == h.id)
                .map_or(0.0, |&(_, s)| s);
            // The estimate converts a Jaccard estimate ŝ (binomial noise
            // σ_s = √(s(1−s)/m)) through t = (x/q+1)·s/(1+s), so by the
            // delta method its own σ is amplified by the conversion's
            // slope (x/q+1)/(1+s)². Check the error in σ units rather
            // than absolutely: small queries against large domains are
            // legitimately noisy (x/q ≈ 25 occurs in this corpus).
            let (x, _) = ranked.sketch(h.id).expect("hit is indexed");
            let s_true =
                lshe_minhash::jaccard_from_containment(truth, x as f64, query.len() as f64);
            let sigma_s = (s_true.max(1.0 / m) * (1.0 - s_true) / m).sqrt();
            let slope = (x as f64 / query.len() as f64 + 1.0) / (1.0 + s_true).powi(2);
            let sigma_t = slope * sigma_s;
            let err = (truth - h.estimated_containment).abs();
            let envelope = 6.0 * sigma_t + 0.02;
            assert!(
                err <= envelope,
                "query {q}, hit {}: est {} vs truth {truth} (err {err}, σ_t {sigma_t})",
                h.id,
                h.estimated_containment
            );
            worst = worst.max(err / envelope);
        }
    }
    // Across all (query, hit) pairs the worst envelope-relative error must
    // stay inside the joint bound — a systematic estimator bug (for
    // example a wrong conversion constant) would blow through this
    // immediately.
    assert!(worst <= 1.0, "worst envelope-relative error {worst}");
}

#[test]
fn oneperm_signatures_drive_the_same_index_machinery() {
    // OPH sketches slot into the ensemble unchanged: exact duplicates are
    // always found, and high-overlap domains are found with high
    // probability.
    let oph = OnePermHasher::new(256);
    let pool = MinHasher::synthetic_values(7, 4000);
    let mut builder = LshEnsemble::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 4 },
        ..EnsembleConfig::default()
    });
    let mut sigs = Vec::new();
    for k in 0..40usize {
        let vals: Vec<u64> = pool[..100 * (k + 1)].to_vec();
        let sig = oph.signature(vals.iter().copied());
        builder.add(k as u32, vals.len() as u64, sig.clone());
        sigs.push((vals.len() as u64, sig));
    }
    let index = builder.build();
    for k in [0usize, 10, 39] {
        let (size, sig) = &sigs[k];
        let hits = index.query_with_size(sig, *size, 1.0);
        assert!(hits.contains(&(k as u32)), "OPH self-match lost for {k}");
    }
}
