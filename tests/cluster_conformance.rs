//! Conformance of the multi-process cluster tier against the
//! single-process sharded engine: a coordinator fronting four real
//! `lshe-serve` processes (well, in-process servers on real TCP ports —
//! the wire protocol is identical) must answer `/query`, `/topk`, and
//! `/batch` **bit-identically** to one server running the in-process
//! `ShardedRanked` over the same corpus: same hits, same estimates
//! (f64s survive the JSON layer at shortest-round-trip precision), same
//! order. Also covered: mutations routed through the coordinator
//! (insert → commit → visible; remove → commit → gone), and the
//! degraded-shard path — killing one shard mid-load yields typed
//! degraded responses from the survivors, never wrong answers.

use lshe::cluster::{shard_of, ClusterConfig};
use lshe::corpus::{Catalog, Domain, DomainMeta};
use lshe::serve::client::HttpClient as Client;
use lshe::serve::container::IndexContainer;
use lshe::serve::engine::Engine;
use lshe::serve::json::Json;
use lshe::serve::server::{start as start_shard, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;
const DOMAINS: usize = 32;

// ---------------------------------------------------------------- helpers

/// Same nested-chain corpus the serve smoke tests use: domain `k` holds
/// `v0 … v{19 + 5k}`, so smaller domains are contained in larger ones
/// and every threshold produces a non-trivial ranked answer.
fn build_catalog(n: usize) -> Catalog {
    let mut catalog = Catalog::new();
    for k in 0..n {
        let values: Vec<String> = (0..20 + 5 * k).map(|i| format!("v{i}")).collect();
        catalog.push(
            Domain::from_strs(values.iter().map(String::as_str)),
            DomainMeta::new(format!("t{k}"), "col"),
        );
    }
    catalog
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lshe_cluster_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn query_body(k: usize, threshold: f64) -> String {
    let quoted: Vec<String> = (0..20 + 5 * k).map(|i| format!("\"v{i}\"")).collect();
    format!(
        "{{\"values\": [{}], \"threshold\": {threshold}}}",
        quoted.join(",")
    )
}

fn topk_body(k: usize, top: usize) -> String {
    let quoted: Vec<String> = (0..20 + 5 * k).map(|i| format!("\"v{i}\"")).collect();
    format!("{{\"values\": [{}], \"k\": {top}}}", quoted.join(","))
}

fn hit_ids(response: &Json) -> Vec<u64> {
    response
        .get("hits")
        .and_then(Json::as_array)
        .expect("hits array")
        .iter()
        .map(|h| h.get("id").and_then(Json::as_u64).expect("hit id"))
        .collect()
}

/// A running topology: the whole-index reference server (in-process
/// `--shards 4`), four single-shard servers over the split files, and
/// the coordinator fronting them.
struct Topology {
    dir: PathBuf,
    reference: ServerHandle,
    shards: Vec<ServerHandle>,
    cluster: lshe::cluster::ClusterHandle,
}

fn boot(name: &str) -> Topology {
    let dir = scratch(name);
    let whole_path = dir.join("whole.lshe");
    let container = IndexContainer::build(&build_catalog(DOMAINS), SHARDS, true);
    std::fs::write(&whole_path, container.to_bytes()).expect("write whole");

    // The reference: ONE process, in-process sharding — the ground truth
    // the cluster must reproduce bit-for-bit.
    let reference = start_shard(
        Arc::new(Engine::load(&whole_path, SHARDS).expect("reference engine")),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind reference");

    // The cluster: the same index split with the same placement the
    // in-process path uses, one real server per shard file.
    let parts = container
        .split_with(SHARDS, shard_of)
        .expect("split whole index");
    let mut shards = Vec::with_capacity(SHARDS);
    for (s, part) in parts.iter().enumerate() {
        let path = dir.join(format!("whole.shard{s}.lshe"));
        std::fs::write(&path, part.to_bytes()).expect("write shard");
        shards.push(
            start_shard(
                Arc::new(Engine::load(&path, 1).expect("shard engine")),
                &ServerConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    threads: 2,
                    cache_capacity: 64,
                    shard_id: Some(s as u64),
                    ..ServerConfig::default()
                },
            )
            .expect("bind shard"),
        );
    }

    let shard_addrs: Vec<SocketAddr> = shards.iter().map(ServerHandle::addr).collect();
    let cluster = lshe::cluster::start(ClusterConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: shard_addrs,
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(5),
        hedge_after: Duration::from_secs(2),
        probe_interval: Duration::from_secs(60),
    })
    .expect("coordinator starts against live shards");

    Topology {
        dir,
        reference,
        shards,
        cluster,
    }
}

impl Topology {
    fn teardown(self) {
        self.cluster.shutdown();
        self.reference.shutdown();
        for shard in self.shards {
            shard.shutdown();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

// ------------------------------------------------------------------ tests

/// The acceptance-criteria test: every read endpoint answers
/// bit-identically to the single-process sharded engine.
#[test]
fn cluster_answers_match_single_process_sharded_bit_for_bit() {
    let topo = boot("conformance");
    let mut coord = Client::connect(topo.cluster.addr());
    let mut single = Client::connect(topo.reference.addr());

    // /health agrees on the corpus size.
    let (status, health) = coord.get("/health");
    assert_eq!(status, 200, "{health}");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("domains").and_then(Json::as_u64),
        Some(DOMAINS as u64)
    );

    // /query across a spread of query sizes and thresholds. The `hits`
    // arrays must be equal as JSON values: same ids, same provenance,
    // same estimates to the last bit, same order.
    for (k, threshold) in [(0usize, 0.5), (5, 0.7), (13, 0.6), (27, 0.9), (31, 0.5)] {
        let body = query_body(k, threshold);
        let (cs, cr) = coord.post("/query", &body);
        let (ss, sr) = single.post("/query", &body);
        assert_eq!(cs, 200, "coordinator query {k}: {cr}");
        assert_eq!(ss, 200, "reference query {k}: {sr}");
        assert_eq!(
            cr.get("hits"),
            sr.get("hits"),
            "query k={k} t={threshold}: cluster diverged from single-process"
        );
        assert_eq!(cr.get("count"), sr.get("count"), "query k={k} count");
        assert!(
            !hit_ids(&cr).is_empty(),
            "query {k} must actually hit (its own domain at least)"
        );
        assert_eq!(
            cr.get("degraded"),
            None,
            "healthy cluster, no degraded flag"
        );
    }

    // /topk is best-effort on BOTH sides — top-k is an LSH-guided
    // best-first search whose candidate set depends on the partition
    // layout, and the whole index (4 partitions) and the shard files
    // (1 partition each) probe differently. So no bit-equality here;
    // instead: exactly k hits, globally rank-ordered, and the top hit —
    // the query's own domain at estimate 1.0 — agrees.
    for (k, top) in [(3usize, 4usize), (10, 7), (31, 1)] {
        let body = topk_body(k, top);
        let (cs, cr) = coord.post("/topk", &body);
        let (ss, sr) = single.post("/topk", &body);
        assert_eq!(cs, 200, "coordinator topk {k}: {cr}");
        assert_eq!(ss, 200, "reference topk {k}: {sr}");
        assert_eq!(hit_ids(&cr).len(), top, "topk returns exactly k: {cr}");
        let coord_hits = cr.get("hits").and_then(Json::as_array).expect("hits");
        let single_hits = sr.get("hits").and_then(Json::as_array).expect("hits");
        assert_eq!(
            coord_hits.first().and_then(|h| h.get("id")),
            single_hits.first().and_then(|h| h.get("id")),
            "topk k={k}: top hit disagrees"
        );
        let estimates: Vec<f64> = coord_hits
            .iter()
            .map(|h| h.get("estimate").and_then(Json::as_f64).expect("estimate"))
            .collect();
        for w in estimates.windows(2) {
            assert!(w[0] >= w[1], "cluster topk not rank-ordered: {estimates:?}");
        }
        // The merged union of per-shard top-k can only improve on the
        // single probe sequence: its weakest hit ranks at least as high.
        let single_min = single_hits
            .iter()
            .map(|h| h.get("estimate").and_then(Json::as_f64).expect("estimate"))
            .fold(f64::INFINITY, f64::min);
        assert!(
            estimates.last().copied().unwrap_or(f64::INFINITY) >= single_min - 1e-12,
            "cluster topk k={k} worse than single-process: {cr} vs {sr}"
        );
    }

    // /batch: element-wise identical, order preserved, mixed modes.
    let mut items: Vec<String> = (0..8).map(|k| query_body(2 * k, 0.8)).collect();
    items.push(topk_body(6, 3));
    let batch = format!("{{\"queries\": [{}]}}", items.join(","));
    let (cs, cr) = coord.post("/batch", &batch);
    let (ss, sr) = single.post("/batch", &batch);
    assert_eq!(cs, 200, "coordinator batch: {cr}");
    assert_eq!(ss, 200, "reference batch: {sr}");
    let coord_results = cr.get("results").and_then(Json::as_array).expect("results");
    let single_results = sr.get("results").and_then(Json::as_array).expect("results");
    assert_eq!(coord_results.len(), single_results.len());
    for (i, (c, s)) in coord_results.iter().zip(single_results).enumerate() {
        assert_eq!(c.get("hits"), s.get("hits"), "batch item {i} diverged");
    }

    // Malformed queries are rejected identically (shard 4xx forwarded
    // verbatim — every shard parses the same way).
    for bad in ["{\"values\": []}", "{\"threshold\": 0.5}", "not json"] {
        let (cs, cr) = coord.post("/query", bad);
        let (ss, sr) = single.post("/query", bad);
        assert_eq!(cs, ss, "status for {bad}");
        assert_eq!(cr.get("error").is_some(), sr.get("error").is_some());
        assert_eq!(cs, 400);
    }

    // /stats aggregates the shard fleet.
    let (status, stats) = coord.get("/stats");
    assert_eq!(status, 200);
    assert_eq!(
        stats.get("domains").and_then(Json::as_u64),
        Some(DOMAINS as u64)
    );
    let per_shard = stats
        .get("per_shard")
        .and_then(Json::as_array)
        .expect("per_shard array");
    assert_eq!(per_shard.len(), SHARDS);

    topo.teardown();
}

/// Mutations route through the coordinator by `id % shards` and stay
/// consistent with what a rebuild would see: insert → commit → the new
/// domain answers its own query; remove → commit → it is gone again.
#[test]
fn mutations_route_commit_and_become_visible() {
    let topo = boot("mutations");
    let mut coord = Client::connect(topo.cluster.addr());

    // A value namespace disjoint from the corpus ("m…").
    let values: Vec<String> = (0..30).map(|i| format!("\"m{i}\"")).collect();
    let insert = format!(
        "{{\"values\": [{}], \"table\": \"live\", \"column\": \"c\"}}",
        values.join(",")
    );
    let (status, response) = coord.post("/insert", &insert);
    assert_eq!(status, 200, "{response}");
    let id = response.get("id").and_then(Json::as_u64).expect("id");
    assert_eq!(id, DOMAINS as u64, "ids continue past the fleet's max");
    let owner = shard_of(u32::try_from(id).expect("small id"), SHARDS);

    // Commit broadcasts to every shard; only the owner had staged work.
    let (status, committed) = coord.post("/commit", "");
    assert_eq!(status, 200, "{committed}");
    assert!(
        committed
            .get("applied")
            .and_then(Json::as_u64)
            .expect("applied")
            >= 1,
        "{committed}"
    );

    // The inserted domain is queryable through the coordinator, served
    // by exactly the shard the placement function names.
    let probe = format!("{{\"values\": [{}], \"threshold\": 0.9}}", values.join(","));
    let (status, response) = coord.post("/query", &probe);
    assert_eq!(status, 200, "{response}");
    assert!(hit_ids(&response).contains(&id), "{response}");
    let mut owner_client = Client::connect(topo.shards[owner].addr());
    let (_, owner_answer) = owner_client.post("/query", &probe);
    assert!(
        hit_ids(&owner_answer).contains(&id),
        "placement says shard {owner} owns id {id}: {owner_answer}"
    );

    // Remove it and the answer reverts.
    let (status, response) = coord.post("/remove", &format!("{{\"id\": {id}}}"));
    assert_eq!(status, 200, "{response}");
    let (status, committed) = coord.post("/commit", "");
    assert_eq!(status, 200, "{committed}");
    let (status, response) = coord.post("/query", &probe);
    assert_eq!(status, 200, "{response}");
    assert!(
        !hit_ids(&response).contains(&id),
        "removed domain still answering: {response}"
    );

    // The fleet-wide domain count is back to the original corpus.
    let (_, stats) = coord.get("/stats");
    assert_eq!(
        stats.get("domains").and_then(Json::as_u64),
        Some(DOMAINS as u64)
    );

    topo.teardown();
}

/// Kill one shard mid-load: reads keep answering from the survivors with
/// a typed `degraded` marker (never silently-wrong full answers), the
/// coordinator's /health turns degraded and names the dead shard, and a
/// mutation owned by the dead shard is refused with 503.
#[test]
fn killing_one_shard_degrades_gracefully() {
    let mut topo = boot("degraded");
    let mut coord = Client::connect(topo.cluster.addr());

    // Healthy first: the full answer includes hits from every shard.
    let body = query_body(1, 0.5); // small query, contained in everything
    let (status, before) = coord.post("/query", &body);
    assert_eq!(status, 200, "{before}");
    let full: Vec<u64> = hit_ids(&before);
    let victim = 2usize;
    assert!(
        full.iter().any(|&id| shard_of(id as u32, SHARDS) == victim),
        "pick a query that the victim shard contributes to: {full:?}"
    );

    // Kill shard 2 (drain its listener; the coordinator only sees
    // connection refusals from here on).
    topo.shards.remove(victim).shutdown();
    std::thread::sleep(Duration::from_millis(100));

    // Reads survive, flagged. (Two calls: the first failure starts the
    // streak, DEGRADE_AFTER = 2 marks the shard degraded.)
    for round in 0..2 {
        let (status, during) = coord.post("/query", &body);
        assert_eq!(status, 200, "round {round}: {during}");
        assert_eq!(
            during.get("degraded"),
            Some(&Json::Bool(true)),
            "round {round} must be marked degraded: {during}"
        );
        let ids = hit_ids(&during);
        assert!(!ids.is_empty(), "survivors must still answer");
        for id in &ids {
            assert_ne!(
                shard_of(*id as u32, SHARDS),
                victim,
                "a hit from the dead shard appeared: {during}"
            );
        }
        let named = during
            .get("degraded_shards")
            .and_then(Json::as_array)
            .expect("degraded_shards");
        assert!(
            named.contains(&Json::uint(victim as u64)),
            "response names the failed shard: {during}"
        );
    }

    // /health live-probes the fleet and reports the outage.
    let (status, health) = coord.get("/health");
    assert_eq!(status, 200, "{health}");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded"),
        "{health}"
    );
    assert!(
        health
            .get("degraded_shards")
            .and_then(Json::as_array)
            .expect("degraded_shards")
            .contains(&Json::uint(victim as u64)),
        "{health}"
    );

    // A mutation owned by the dead shard is a typed refusal, not a hang
    // and not a silent drop. Id DOMAINS+victim lands on the victim.
    let owned_by_victim = (0..)
        .find(|id: &u32| shard_of(*id, SHARDS) == victim)
        .expect("some id maps there");
    let (status, refused) = coord.post("/remove", &format!("{{\"id\": {owned_by_victim}}}"));
    assert_eq!(status, 503, "{refused}");
    assert!(refused.get("error").is_some(), "{refused}");

    // Batches likewise degrade rather than fail.
    let batch = format!("{{\"queries\": [{}, {}]}}", query_body(0, 0.5), body);
    let (status, response) = coord.post("/batch", &batch);
    assert_eq!(status, 200, "{response}");
    assert_eq!(response.get("degraded"), Some(&Json::Bool(true)));

    topo.teardown();
}
