//! Property-based invariants for dynamic mutation (§6.2): arbitrary
//! insert / remove / commit interleavings against a ground-truth model.
//!
//! For every generated script the suite maintains a plain `BTreeMap`
//! model of the live corpus and checks, on the mutated `LshEnsemble` (and
//! a `RankedIndex` driven by the same script, with rebalancing enabled):
//!
//! * partition boundaries stay monotone (`lower ≤ upper` everywhere;
//!   ranges ordered and non-overlapping across the base partitions —
//!   sealed segments and the staged tier carry their own ranges),
//! * physical partition rows account for every live domain plus every
//!   tombstone awaiting compaction,
//! * every stored id remains queryable **exactly once** (a self-query at
//!   `t* = 1.0` returns it once; removed ids are never returned),
//! * `len()` / `is_empty()` / `contains()` never disagree with the model,
//!   and `memory_bytes()` stays positive while anything is indexed,
//! * `staged_len()` tracks exactly the inserts since the last commit.

use lshe_core::{
    CompactionThresholds, EnsembleConfig, Leveled, LshEnsemble, MaintenancePlanner, MutableIndex,
    MutationError, PartitionStrategy, Query, RankedIndex, ShardedEnsemble, ShardedRanked,
};
use lshe_lsh::DomainId;
use lshe_minhash::{MinHasher, Signature};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const NUM_PERM: usize = 64;

fn config(parts: usize) -> EnsembleConfig {
    EnsembleConfig {
        num_perm: NUM_PERM,
        b_max: 8,
        r_max: 8,
        strategy: PartitionStrategy::EquiDepth { n: parts },
    }
}

/// Deterministic per-id domain: `size` distinct synthetic values.
fn signature_for(id: DomainId, size: u64) -> Signature {
    let hasher = MinHasher::new(NUM_PERM);
    let vals = MinHasher::synthetic_values(u64::from(id) + 1, size as usize);
    hasher.signature(vals.iter().copied())
}

/// Checks the structural invariants of one mutated index against the
/// model. `staged` is the insert count since the last commit.
fn check_invariants(
    label: &str,
    index: &dyn MutableIndex,
    ens: &LshEnsemble,
    model: &BTreeMap<DomainId, u64>,
    staged: usize,
) -> Result<(), TestCaseError> {
    prop_assert!(
        index.len() == model.len(),
        "{label}: len {} vs model {}",
        index.len(),
        model.len()
    );
    prop_assert!(
        index.is_empty() == model.is_empty(),
        "{label}: is_empty disagrees"
    );
    prop_assert!(
        index.staged_len() == staged,
        "{label}: staged_len {} vs {staged}",
        index.staged_len()
    );
    if !model.is_empty() {
        prop_assert!(index.memory_bytes() > 0, "{label}: no memory accounted");
    }
    for &id in model.keys() {
        prop_assert!(ens.contains(id), "{label}: live id {id} not contained");
    }
    // Partition boundaries monotone and well-formed. Counts are physical
    // rows, so tombstoned domains still occupy their partition until
    // compaction folds them out.
    let stats = ens.partition_stats();
    let members: usize = stats.iter().map(|p| p.count).sum();
    let tombstones = ens.segment_stats().tombstones;
    prop_assert!(
        members == model.len() + tombstones,
        "{label}: partition members {members} vs model {} + {tombstones} tombstones",
        model.len()
    );
    for p in &stats {
        prop_assert!(p.lower <= p.upper, "{label}: inverted bounds {p:?}");
    }
    // Ordering is a per-tier property: each sealed segment (and the staged
    // pseudo-partition) restarts its own size range, so only the base
    // partitioning promises ordered, non-overlapping ranges.
    for w in ens.base_partition_stats().windows(2) {
        prop_assert!(
            w[0].upper <= w[1].lower,
            "{label}: overlapping partitions {w:?}"
        );
    }
    Ok(())
}

/// Self-queries: every live id is returned exactly once at `t* = 1.0`;
/// every removed id never (probed with its original signature). Checked
/// on a sample to bound runtime.
fn check_queryability(
    label: &str,
    ens: &LshEnsemble,
    model: &BTreeMap<DomainId, u64>,
    dead: &[(DomainId, u64)],
) -> Result<(), TestCaseError> {
    for (&id, &size) in model.iter().take(25) {
        let sig = signature_for(id, size);
        let got = ens.query_with_size(&sig, size, 1.0);
        let hits = got.iter().filter(|&&g| g == id).count();
        prop_assert!(hits == 1, "{label}: live id {id} found {hits} times");
    }
    for &(id, size) in dead.iter().take(25) {
        let sig = signature_for(id, size);
        prop_assert!(
            !ens.query_with_size(&sig, size, 1.0).contains(&id),
            "{label}: dead id {id} returned"
        );
        prop_assert!(!ens.contains(id), "{label}: dead id {id} contained");
    }
    Ok(())
}

proptest! {
    /// The headline property: arbitrary interleavings keep both the plain
    /// ensemble and the rebalancing ranked index consistent with the
    /// model, structurally sound, and exactly-once queryable.
    #[test]
    fn interleaved_mutations_preserve_equi_depth_invariants(
        initial_sizes in prop::collection::vec(1u64..1_500, 8..24),
        script in prop::collection::vec(0u32..1_000_000, 1..40),
        parts in 2usize..6,
        trigger_choice in 0usize..3,
    ) {
        // Build the initial corpus (ids 0..n) and the model.
        let mut model: BTreeMap<DomainId, u64> = BTreeMap::new();
        let mut ens_builder = LshEnsemble::builder_with(config(parts));
        let mut ranked_builder = RankedIndex::builder_with(config(parts));
        for (i, &size) in initial_sizes.iter().enumerate() {
            let id = i as DomainId;
            let sig = signature_for(id, size);
            ens_builder.add(id, size, sig.clone());
            ranked_builder.add(id, size, sig);
            model.insert(id, size);
        }
        let mut ens = ens_builder.build();
        let mut ranked = ranked_builder.build();
        // Sweep the trigger across "always", "default", and "never" so
        // rebalancing and conservative growth are both exercised.
        ranked.set_rebalance_trigger([0.5, 4.0, 1e12][trigger_choice]);

        let mut next_id = initial_sizes.len() as DomainId;
        let mut dead: Vec<(DomainId, u64)> = Vec::new();
        let mut staged = 0usize;
        for word in script {
            match word % 3 {
                0 => {
                    // Insert a fresh domain; duplicate inserts must fail
                    // identically on both indexes.
                    let id = next_id;
                    next_id += 1;
                    let size = 1 + u64::from(word / 3) % 3_000;
                    let sig = signature_for(id, size);
                    ens.try_insert(id, size, &sig).expect("fresh insert");
                    ranked.try_insert(id, size, &sig).expect("fresh insert");
                    prop_assert_eq!(
                        ens.try_insert(id, size, &sig),
                        Err(MutationError::DuplicateId(id))
                    );
                    prop_assert_eq!(
                        ranked.try_insert(id, size, &sig),
                        Err(MutationError::DuplicateId(id))
                    );
                    model.insert(id, size);
                    staged += 1;
                }
                1 => {
                    if model.is_empty() {
                        continue;
                    }
                    // Remove a deterministic live id; double removal must
                    // fail identically on both indexes.
                    let live: Vec<DomainId> = model.keys().copied().collect();
                    let id = live[(word as usize / 3) % live.len()];
                    // Removing a still-staged insert shrinks the backlog.
                    let was_staged = ens.staged_len();
                    ens.try_remove(id).expect("live remove");
                    ranked.try_remove(id).expect("live remove");
                    staged -= was_staged - ens.staged_len();
                    prop_assert_eq!(ens.try_remove(id), Err(MutationError::UnknownId(id)));
                    prop_assert_eq!(ranked.try_remove(id), Err(MutationError::UnknownId(id)));
                    let size = model.remove(&id).expect("modelled");
                    dead.push((id, size));
                }
                _ => {
                    let report = MutableIndex::commit(&mut ens);
                    prop_assert!(
                        report.merged == staged,
                        "ensemble commit merged {} vs staged {staged}",
                        report.merged
                    );
                    prop_assert!(!report.rebalanced, "plain ensemble cannot rebalance");
                    let _ = ranked.commit();
                    staged = 0;
                }
            }
            prop_assert_eq!(ranked.staged_len(), ens.staged_len());
        }

        check_invariants("ensemble", &ens, &ens, &model, staged)?;
        check_invariants("ranked", &ranked, ranked.ensemble(), &model, staged)?;
        check_queryability("ensemble", &ens, &model, &dead)?;
        check_queryability("ranked", ranked.ensemble(), &model, &dead)?;

        // A final commit folds everything and changes no answers.
        let _ = MutableIndex::commit(&mut ens);
        let _ = ranked.commit();
        prop_assert_eq!(ens.staged_len(), 0);
        check_queryability("ensemble/committed", &ens, &model, &dead)?;
        check_queryability("ranked/committed", ranked.ensemble(), &model, &dead)?;
    }

    /// Serialisation commutes with mutation: mutate → save → load lands on
    /// an index that answers exactly like the in-memory original.
    #[test]
    fn mutated_ensemble_roundtrips_through_bytes(
        initial_sizes in prop::collection::vec(1u64..800, 4..16),
        script in prop::collection::vec(0u32..1_000_000, 1..25),
    ) {
        let mut model: BTreeMap<DomainId, u64> = BTreeMap::new();
        let mut builder = LshEnsemble::builder_with(config(3));
        for (i, &size) in initial_sizes.iter().enumerate() {
            let id = i as DomainId;
            builder.add(id, size, signature_for(id, size));
            model.insert(id, size);
        }
        let mut ens = builder.build();
        let mut next_id = initial_sizes.len() as DomainId;
        for word in script {
            if word % 2 == 0 {
                let id = next_id;
                next_id += 1;
                let size = 1 + u64::from(word) % 900;
                ens.try_insert(id, size, &signature_for(id, size)).expect("insert");
                model.insert(id, size);
            } else if !model.is_empty() {
                let live: Vec<DomainId> = model.keys().copied().collect();
                let id = live[(word as usize) % live.len()];
                ens.try_remove(id).expect("remove");
                model.remove(&id);
            }
        }
        let restored = LshEnsemble::from_bytes(&ens.to_bytes()).expect("roundtrip");
        prop_assert_eq!(restored.len(), model.len());
        for (&id, &size) in model.iter().take(20) {
            let sig = signature_for(id, size);
            prop_assert!(
                ens.query_with_size(&sig, size, 1.0)
                    == restored.query_with_size(&sig, size, 1.0),
                "id {id} answers diverge after roundtrip"
            );
            prop_assert!(restored.contains(id));
        }
    }

    /// Background maintenance racing the mutation script: after every
    /// commit the leveled planner folds the sealed stack to quiescence
    /// through `apply_merge` — exactly the loop the serve maintainer
    /// runs — and at each quiescent point every mutable backend must
    /// agree with a fresh build of the live corpus: same `len`, every
    /// live id self-queries to exactly one hit in both (and `contains`
    /// agrees), every removed id to none, and the sealed stack sits
    /// within the policy's segment bound. (Full hit *sets* can
    /// legitimately differ — partition geometry depends on physical
    /// layout — so the contract is exact self-recall, not candidate-set
    /// equality.)
    #[test]
    fn background_merges_preserve_query_results(
        initial_sizes in prop::collection::vec(1u64..600, 5..12),
        script in prop::collection::vec(0u32..1_000_000, 1..22),
        fanout in 2usize..5,
        level0_choice in 0usize..3,
    ) {
        let planner = MaintenancePlanner::new(Box::new(Leveled {
            fanout,
            level0_entries: [1, 4, 64][level0_choice],
            thresholds: CompactionThresholds::default(),
        }));
        let entries: Vec<(DomainId, u64, Signature)> = initial_sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| (i as DomainId, size, signature_for(i as DomainId, size)))
            .collect();
        let mut model: BTreeMap<DomainId, u64> =
            entries.iter().map(|&(id, size, _)| (id, size)).collect();
        // Signatures are memoised — recomputing them per probe dominates
        // the runtime otherwise.
        let mut sigs: BTreeMap<DomainId, Signature> = entries
            .iter()
            .map(|(id, _, sig)| (*id, sig.clone()))
            .collect();
        let mut backends = merge_backends(&entries);

        let mut next_id = initial_sizes.len() as DomainId;
        let mut dead: Vec<(DomainId, u64)> = Vec::new();
        for word in script {
            match word % 3 {
                0 => {
                    let id = next_id;
                    next_id += 1;
                    let size = 1 + u64::from(word / 3) % 500;
                    let sig = signature_for(id, size);
                    for (name, index) in &mut backends {
                        index.insert(id, size, &sig).unwrap_or_else(|e| {
                            panic!("{name}: fresh insert of {id} failed: {e:?}")
                        });
                    }
                    model.insert(id, size);
                    sigs.insert(id, sig);
                }
                1 => {
                    if model.is_empty() {
                        continue;
                    }
                    let live: Vec<DomainId> = model.keys().copied().collect();
                    let id = live[(word as usize / 3) % live.len()];
                    for (name, index) in &mut backends {
                        index.remove(id).unwrap_or_else(|e| {
                            panic!("{name}: live remove of {id} failed: {e:?}")
                        });
                    }
                    let size = model.remove(&id).expect("modelled");
                    dead.push((id, size));
                }
                _ => {
                    for (_, index) in &mut backends {
                        let _ = index.commit();
                    }
                    // Intermediate quiescent point: drain + the cheap
                    // checks (bound, self-recall on the merged index).
                    drain_and_check(&planner, &mut backends, &model, &dead, &sigs, false)?;
                }
            }
        }
        // Final quiescent point: commit whatever is staged, drain, and
        // additionally compare against a fresh build of the live corpus.
        for (_, index) in &mut backends {
            let _ = index.commit();
        }
        drain_and_check(&planner, &mut backends, &model, &dead, &sigs, true)?;
    }
}

/// One mutable backend of every kind over the initial corpus, in a fixed
/// order so merged and fresh instances can be zipped.
fn merge_backends(
    entries: &[(DomainId, u64, Signature)],
) -> Vec<(&'static str, Box<dyn MutableIndex>)> {
    let mut ensemble = LshEnsemble::builder_with(config(3));
    let mut ranked = RankedIndex::builder_with(config(3));
    let mut sharded = ShardedEnsemble::builder(3, config(3));
    let mut ranked_for_shards = RankedIndex::builder_with(config(3));
    for (id, size, sig) in entries {
        ensemble.add(*id, *size, sig.clone());
        ranked.add(*id, *size, sig.clone());
        sharded.add(*id, *size, sig.clone());
        ranked_for_shards.add(*id, *size, sig.clone());
    }
    let sharded_ranked = ShardedRanked::build(Arc::new(ranked_for_shards.build()), 3, config(3));
    vec![
        ("ensemble", Box::new(ensemble.build())),
        ("ranked", Box::new(ranked.build())),
        ("sharded", Box::new(sharded.build())),
        ("sharded_ranked", Box::new(sharded_ranked)),
    ]
}

/// Drains the planner's merge plan on every backend (the maintainer's
/// loop) and checks the quiescent-point invariants. With `full`, also
/// builds every backend fresh from the live corpus and checks self-recall
/// agreement (the expensive comparison, run once per case).
fn drain_and_check(
    planner: &MaintenancePlanner,
    backends: &mut [(&'static str, Box<dyn MutableIndex>)],
    model: &BTreeMap<DomainId, u64>,
    dead: &[(DomainId, u64)],
    sigs: &BTreeMap<DomainId, Signature>,
    full: bool,
) -> Result<(), TestCaseError> {
    let sample = if full { 16 } else { 6 };
    // Sharded backends need at least one domain per shard, so the fresh
    // comparison only runs when the live corpus still covers them.
    let fresh = if full && model.len() >= 3 {
        let fresh_entries: Vec<(DomainId, u64, Signature)> = model
            .iter()
            .map(|(&id, &size)| (id, size, sigs[&id].clone()))
            .collect();
        merge_backends(&fresh_entries)
    } else {
        Vec::new()
    };
    for (i, (name, index)) in backends.iter_mut().enumerate() {
        let name = *name;
        let mut rounds = 0usize;
        loop {
            let tasks = planner.plan(&index.segment_layout());
            if tasks.is_empty() {
                break;
            }
            for task in &tasks {
                index.apply_merge(task);
            }
            rounds += 1;
            prop_assert!(rounds < 64, "{name}: merge plan never quiesced");
        }
        let layout = index.segment_layout();
        // The bound is sized on physical entries: segments retain
        // tombstoned rows until a fold erases them.
        let bound = planner.segment_bound(layout.len + layout.tombstones);
        prop_assert!(
            layout.segments.len() <= bound,
            "{name}: {} segments exceed the policy bound {bound} after drain",
            layout.segments.len()
        );
        prop_assert!(
            index.len() == model.len(),
            "{name}: len {} diverges from model {}",
            index.len(),
            model.len()
        );
        for (&id, &size) in model.iter().take(sample) {
            let sig = &sigs[&id];
            let query = Query::threshold(sig, 1.0).with_size(size);
            let mut probes: Vec<(&str, &dyn MutableIndex)> = vec![("merged", &**index)];
            if let Some((_, fresh)) = fresh.get(i) {
                probes.push(("fresh", &**fresh));
            }
            for (label, idx) in probes {
                let outcome = idx.search(&query).unwrap_or_else(|e| {
                    panic!("{name}/{label}: self-query for {id} failed: {e:?}")
                });
                let hits = outcome.hits.iter().filter(|h| h.id == id).count();
                prop_assert!(
                    hits == 1,
                    "{name}/{label}: live id {id} found {hits} times after merge"
                );
            }
        }
        for &(id, size) in dead.iter().take(sample) {
            let sig = &sigs[&id];
            let query = Query::threshold(sig, 1.0).with_size(size);
            let outcome = index
                .search(&query)
                .unwrap_or_else(|e| panic!("{name}: dead-id query for {id} failed: {e:?}"));
            prop_assert!(
                !outcome.hits.iter().any(|h| h.id == id),
                "{name}: dead id {id} returned after merge"
            );
        }
    }
    Ok(())
}
