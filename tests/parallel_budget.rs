//! Lane-budget regression guard for the parallel query path.
//!
//! History: the original `query_parallel` spawned one thread per
//! partition on every call, which benchmarked ~12× SLOWER than the
//! sequential probe on a small host (BENCH_serve.json's
//! `query_parallel_32p` vs `query_sequential_32p`). The fix routes the
//! fan-out through the process-wide lane budget
//! (`lshe_minhash::lanes::run_chunked`): with no spare lanes the probe
//! must degrade to the inline sequential code path — same results, and
//! within noise of sequential latency instead of an order of magnitude
//! behind it.

use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_minhash::MinHasher;
use std::time::{Duration, Instant};

fn build_32p(num_domains: usize) -> (LshEnsemble, Vec<lshe_minhash::Signature>, Vec<u64>) {
    let hasher = MinHasher::new(256);
    let corpus = lshe_bench::workload::build_perf_corpus(num_domains, 9, &hasher);
    let ids: Vec<u32> = (0..corpus.sizes.len() as u32).collect();
    let sig_refs: Vec<&lshe_minhash::Signature> = corpus.signatures.iter().collect();
    let ens = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 32 },
            ..EnsembleConfig::default()
        },
        &ids,
        &corpus.sizes,
        &sig_refs,
    );
    (ens, corpus.signatures, corpus.sizes)
}

/// Minimum wall time of `runs` invocations — the standard noise filter
/// for micro-timing (the minimum is the run least disturbed by the OS).
fn min_time(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

#[test]
fn parallel_path_degrades_inline_when_budget_is_empty() {
    let (ens, signatures, sizes) = build_32p(8_000);
    let q = 4_321usize;

    // Drain the whole lane budget so `run_chunked` cannot take extras:
    // the parallel probe must run inline on the calling thread.
    let _hog = lshe_minhash::lanes::acquire(usize::MAX);

    // Identical results either way, budget or no budget.
    let seq = ens.query_with_size(&signatures[q], sizes[q], 0.5);
    let par = ens.query_parallel(&signatures[q], sizes[q], 0.5);
    assert_eq!(seq, par, "inline-degraded parallel probe changed results");

    // Warm both paths, then compare min-of-N wall times. The old
    // thread-per-partition code was ~12× slower; the inline-degraded
    // path does the same work as sequential plus one atomic acquire, so
    // 1.5× is a generous bound that still catches any respawn
    // regression by an order of magnitude. The whole comparison retries
    // a few times because this test shares the machine with the rest of
    // the suite — one quiet window is enough to prove the paths match,
    // while a genuine respawn regression fails every attempt.
    const RUNS: usize = 30;
    const ATTEMPTS: usize = 6;
    for _ in 0..5 {
        std::hint::black_box(ens.query_with_size(&signatures[q], sizes[q], 0.5));
        std::hint::black_box(ens.query_parallel(&signatures[q], sizes[q], 0.5));
    }
    // Floor the denominator so a sub-microsecond sequential probe can't
    // turn scheduler jitter into a spurious ratio failure.
    let floor = Duration::from_micros(20);
    let mut attempts = Vec::new();
    for _ in 0..ATTEMPTS {
        let t_seq = min_time(RUNS, || {
            std::hint::black_box(ens.query_with_size(&signatures[q], sizes[q], 0.5));
        });
        let t_par = min_time(RUNS, || {
            std::hint::black_box(ens.query_parallel(&signatures[q], sizes[q], 0.5));
        });
        if t_par <= t_seq.max(floor) * 3 / 2 {
            return;
        }
        attempts.push((t_par, t_seq));
    }
    panic!(
        "budget-starved parallel probe should match sequential on at least \
         one of {ATTEMPTS} attempts: (parallel, sequential) = {attempts:?}"
    );
}

#[test]
fn parallel_path_matches_sequential_results_with_budget() {
    // With the budget intact (whatever this host offers), chunked
    // fan-out must never change the answer — for several queries and
    // thresholds, including ones with zero hits.
    let (ens, signatures, sizes) = build_32p(4_000);
    for q in [7usize, 999, 2_500, 3_999] {
        for t in [0.3, 0.5, 0.9, 1.0] {
            assert_eq!(
                ens.query_with_size(&signatures[q], sizes[q], t),
                ens.query_parallel(&signatures[q], sizes[q], t),
                "q={q} t={t}"
            );
        }
    }
}
