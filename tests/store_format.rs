//! Corruption robustness of the packed v2 store format.
//!
//! A serving node must never crash on — or silently answer from — a
//! damaged index file. This suite packs a real container, then damages
//! the file every way the format can detect: a bit flipped in every
//! section payload, in the header, and in the section table; truncation
//! at every structural boundary; and a wrong magic. Every case must
//! produce a *typed* error naming what is wrong (and, through the
//! container, which file), never a panic and never a clean load.

use lshe_datagen::{generate_catalog, CorpusConfig};
use lshe_serve::container::LoadError;
use lshe_serve::IndexContainer;
use lshe_store::{Store, StoreError, HEADER_LEN, MAGIC};
use std::path::PathBuf;

/// Fresh per-test scratch dir (parallel tests must not collide).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lshe_store_format_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Builds a ranked container and packs it; returns the packed bytes and
/// the container (for answer comparison).
fn packed_fixture(dir: &std::path::Path) -> (Vec<u8>, IndexContainer) {
    let catalog = generate_catalog(&CorpusConfig::tiny(60, 77));
    let container = IndexContainer::build(&catalog, 4, true);
    let path = dir.join("clean.lshepk");
    container.pack_v2(&path).expect("pack");
    let bytes = std::fs::read(&path).expect("read packed");
    (bytes, container)
}

/// Writes `bytes` to a file and runs both load paths, asserting neither
/// panics and both fail; returns the container-load error for inspection.
fn load_damaged(dir: &std::path::Path, name: &str, bytes: &[u8]) -> LoadError {
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write damaged");
    let err = IndexContainer::load(&path).expect_err("damaged file must not load");
    // The error must say which file is bad.
    assert_eq!(err.path(), path, "error must carry the file path");
    err
}

#[test]
fn bit_flip_in_every_section_is_a_typed_checksum_error() {
    let dir = scratch("flip_sections");
    let (clean, container) = packed_fixture(&dir);

    // Discover the section layout from the clean file.
    let clean_path = dir.join("clean.lshepk");
    let store = Store::open(&clean_path).expect("clean store opens");
    let sections: Vec<(&'static str, u64, u64)> = store
        .sections()
        .iter()
        .map(|s| (s.kind.name(), s.offset, s.len))
        .collect();
    drop(store);
    assert!(
        sections.len() >= 9,
        "fixture should populate every section kind, got {sections:?}"
    );

    for (name, offset, len) in sections {
        assert!(len > 0, "section {name} is empty");
        // Flip one bit at the start, middle, and end of the payload.
        for probe in [offset, offset + len / 2, offset + len - 1] {
            let mut bytes = clean.clone();
            bytes[probe as usize] ^= 0x10;
            let file = format!("flip_{}_{probe}.lshepk", name.replace(' ', "_"));

            // Store layer: structural open succeeds (payloads are not
            // read), verify pins the damage to the named section.
            let path = dir.join(&file);
            std::fs::write(&path, &bytes).expect("write");
            let store = Store::open(&path).expect("structural open is O(sections)");
            match store.verify() {
                Err(StoreError::SectionChecksum { section, .. }) => {
                    assert_eq!(section, name, "wrong section blamed at byte {probe}");
                }
                other => {
                    panic!("section {name} byte {probe}: expected checksum error, got {other:?}")
                }
            }
            drop(store);

            // Serving layer: the container refuses the file outright —
            // corruption can never reach query execution.
            let err = load_damaged(&dir, &file, &bytes);
            let msg = err.to_string();
            assert!(
                msg.contains(name),
                "container error must name section {name:?}, got: {msg}"
            );
        }
    }

    // The clean file still answers identically to the source container —
    // the fixture itself is sound.
    let reopened = IndexContainer::load(&clean_path).expect("clean file loads");
    let (size, sig) = container.sketch(3).expect("ranked fixture");
    assert_eq!(
        reopened.search(sig, size, 0.6),
        container.search(sig, size, 0.6),
        "clean packed file must answer like its source"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn header_and_table_damage_is_detected() {
    let dir = scratch("flip_header");
    let (clean, _) = packed_fixture(&dir);

    // Every byte of the checksummed header prefix (magic, version,
    // lengths, table pointer, checksums) must be load-bearing.
    for probe in 0..40usize {
        let mut bytes = clean.clone();
        bytes[probe] ^= 0x04;
        let err = load_damaged(&dir, &format!("hdr_{probe}.lshepk"), &bytes);
        // v1 fallback must not kick in either: damage inside the magic
        // makes the file *neither* format, and the error still points at
        // a structural problem rather than a clean parse.
        let msg = err.to_string();
        assert!(!msg.is_empty());
    }

    // The section table is checksummed independently of the header. Its
    // location comes from the header itself (the packer appends it after
    // the last section payload).
    let section_count = u32::from_le_bytes(clean[16..20].try_into().expect("4 bytes")) as usize;
    let table_offset = u64::from_le_bytes(clean[24..32].try_into().expect("8 bytes")) as usize;
    assert!(
        table_offset >= HEADER_LEN && section_count > 0,
        "sane header"
    );
    // Flip one bit in every table entry; each must be caught by the
    // table CRC before any entry is trusted.
    for entry in 0..section_count {
        let probe = table_offset + entry * 32 + 17;
        let mut bytes = clean.clone();
        bytes[probe] ^= 0x01;
        let path = dir.join(format!("table_{entry}.lshepk"));
        std::fs::write(&path, &bytes).expect("write");
        match Store::open(&path) {
            Err(StoreError::TableChecksum { .. }) => {}
            other => panic!("table entry {entry}: expected TableChecksum, got {other:?}"),
        }
        let _ = load_damaged(&dir, &format!("table_c_{entry}.lshepk"), &bytes);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_at_every_boundary_is_typed() {
    let dir = scratch("truncate");
    let (clean, _) = packed_fixture(&dir);

    // Below the header: too short to be anything.
    for cut in [0usize, 1, 7, 8, 39, HEADER_LEN - 1] {
        let bytes = clean[..cut].to_vec();
        let path = dir.join(format!("cut_{cut}.lshepk"));
        std::fs::write(&path, &bytes).expect("write");
        match Store::open(&path) {
            Err(StoreError::Truncated { .. } | StoreError::BadMagic { .. }) => {}
            other => panic!("cut at {cut}: expected truncation/magic error, got {other:?}"),
        }
        // The container layer sees a too-short head as a v1 candidate or
        // a store failure; either way it must error with the path.
        if cut >= 8 {
            let _ = load_damaged(&dir, &format!("cut_c_{cut}.lshepk"), &bytes);
        }
    }

    // Past the header: the table or a section runs off the end.
    for frac in [4usize, 2] {
        let cut = clean.len() / frac;
        let bytes = clean[..cut].to_vec();
        let path = dir.join(format!("cut_mid_{frac}.lshepk"));
        std::fs::write(&path, &bytes).expect("write");
        match Store::open(&path) {
            Err(
                StoreError::Truncated { .. }
                | StoreError::SectionBounds { .. }
                | StoreError::TableChecksum { .. },
            ) => {}
            Ok(_) => panic!("cut at {cut} of {} must not open", clean.len()),
            Err(other) => panic!("cut at {cut}: unexpected error class {other:?}"),
        }
        let _ = load_damaged(&dir, &format!("cut_midc_{frac}.lshepk"), &bytes);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_magic_is_rejected_not_misparsed() {
    let dir = scratch("magic");
    let (clean, _) = packed_fixture(&dir);

    // A file that *almost* has the magic.
    let mut bytes = clean.clone();
    bytes[7] = b'3';
    let path = dir.join("near_magic.lshepk");
    std::fs::write(&path, &bytes).expect("write");
    match Store::open(&path) {
        Err(StoreError::BadMagic { found }) => {
            assert_eq!(&found[..7], &MAGIC[..7], "prefix preserved in report");
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }

    // Arbitrary garbage of plausible size: the store must reject it, and
    // the container must fail its v1 fallback with a typed decode error
    // rather than panic.
    let garbage: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    assert!(matches!(
        Store::open({
            let p = dir.join("garbage.lshepk");
            std::fs::write(&p, &garbage).expect("write");
            p
        }),
        Err(StoreError::BadMagic { .. })
    ));
    let err = load_damaged(&dir, "garbage2.lshepk", &garbage);
    assert!(
        matches!(err, LoadError::Decode { .. }),
        "garbage falls through to the v1 decoder and fails typed: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_from_the_future_is_refused() {
    let dir = scratch("version");
    let (clean, _) = packed_fixture(&dir);
    let mut bytes = clean.clone();
    // Bump the version field and re-seal the header checksum so ONLY the
    // version differs — the reader must refuse on version, not checksum.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let reseal = lshe_store::crc32(&bytes[0..36]);
    bytes[36..40].copy_from_slice(&reseal.to_le_bytes());
    let path = dir.join("future.lshepk");
    std::fs::write(&path, &bytes).expect("write");
    match Store::open(&path) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, lshe_store::VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
