//! Cross-backend conformance suite for the unified `DomainIndex` surface.
//!
//! Every index in the workspace — the LSH Ensemble, its ranked and
//! sharded variants, the LSH Forest adapter, and the paper's §6.1
//! baselines (MinHash LSH, Asym, Asym + partitioning) — is driven over
//! ONE shared generated corpus through `Box<dyn DomainIndex>`, and the
//! answers are checked against the exact (inverted-index) ground truth:
//!
//! * the exact self-match is always found,
//! * recall over size-comparable true containers stays high,
//! * containment estimates (where a backend produces them) agree with the
//!   exact scores,
//! * `QueryStats` are self-consistent (candidates ≥ survivors, partitions
//!   probed ≤ total), and
//! * malformed and unsupported queries come back as typed errors, never
//!   panics.

use lshe_core::{
    pack_ranked, AsymIndexBuilder, AsymPartitionedIndex, DomainIndex, EnsembleConfig, ForestIndex,
    LshEnsemble, MmapIndex, MutableIndex, PartitionStrategy, Query, QueryError, RankedIndex,
    ShardedEnsemble, ShardedRanked,
};
use lshe_corpus::{Catalog, Domain, DomainMeta, ExactIndex};
use lshe_lsh::DomainId;
use lshe_minhash::{MinHasher, Signature};
use lshe_store::Packer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N: usize = 24;
const STEP: usize = 25;
const PARTS: usize = 8;

/// Corpus seed: `LSHE_TEST_SEED` when set (CI runs the suite under two
/// different values as a flakiness guard), else the historical default.
fn test_seed() -> u64 {
    std::env::var("LSHE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(77)
}

/// The shared corpus: nested pool domains, domain k = first 25·(k+1)
/// values — so containment relations are known exactly and domain sizes
/// span 25..600 (a 24× skew, enough to exercise partitioning).
struct World {
    values: Vec<Vec<u64>>,
    entries: Vec<(DomainId, u64, Signature)>,
    exact: ExactIndex,
}

fn world() -> World {
    let hasher = MinHasher::new(256);
    let pool = MinHasher::synthetic_values(test_seed(), STEP * N);
    let mut catalog = Catalog::new();
    let mut values = Vec::new();
    let mut entries = Vec::new();
    for k in 0..N {
        let vals: Vec<u64> = pool[..STEP * (k + 1)].to_vec();
        let sig = hasher.signature(vals.iter().copied());
        catalog.push(
            Domain::from_hashes(vals.clone()),
            DomainMeta::new(format!("t{k}"), "col"),
        );
        entries.push((k as DomainId, vals.len() as u64, sig));
        values.push(vals);
    }
    World {
        values,
        entries,
        exact: ExactIndex::build(&catalog),
    }
}

fn config() -> EnsembleConfig {
    EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: PARTS },
        ..EnsembleConfig::default()
    }
}

/// Packs `ranked` into a scratch v2 file and opens it through `mmap(2)`;
/// the file is unlinked immediately (the mapping keeps it alive), so the
/// backend really does answer from borrowed page-cache memory.
fn mmap_backend(ranked: &RankedIndex) -> MmapIndex {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "lshe_conformance_{}_{}.lshepk",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let mut packer = Packer::create(&path).expect("create packer");
    pack_ranked(ranked, &mut packer).expect("pack ranked sections");
    packer.finish().expect("finish pack");
    let mapped = MmapIndex::open_verified(&path).expect("open packed file");
    let _ = std::fs::remove_file(&path);
    mapped
}

/// Every sketch-based backend, boxed behind the one trait.
fn backends(w: &World) -> Vec<(&'static str, Box<dyn DomainIndex>)> {
    let mut ensemble = LshEnsemble::builder_with(config());
    let mut ranked = RankedIndex::builder_with(config());
    let mut sharded = ShardedEnsemble::builder(3, config());
    let mut forest = ForestIndex::new(config());
    let mut asym = AsymIndexBuilder::new(config());
    for (id, size, sig) in &w.entries {
        ensemble.add(*id, *size, sig.clone());
        ranked.add(*id, *size, sig.clone());
        sharded.add(*id, *size, sig.clone());
        forest.insert(*id, *size, sig);
        asym.add(*id, *size, sig.clone());
    }
    forest.commit();
    let ranked = Arc::new(ranked.build());
    let sharded_ranked = ShardedRanked::build(Arc::clone(&ranked), 3, config());
    let mapped = mmap_backend(&ranked);
    vec![
        ("ensemble", Box::new(ensemble.build())),
        ("ranked", Box::new(ranked)),
        ("sharded", Box::new(sharded.build())),
        ("sharded_ranked", Box::new(sharded_ranked)),
        ("mmap", Box::new(mapped)),
        ("forest", Box::new(forest)),
        ("asym", Box::new(asym.build())),
        (
            "asym_partitioned",
            Box::new(AsymPartitionedIndex::build(&config(), PARTS, &w.entries)),
        ),
    ]
}

/// Exact containment t(Q_q, X_x) in the nested corpus: domain q ⊆ domain x
/// for q ≤ x, else overlap is |X_x| of Q_q's first values.
fn exact_containment(w: &World, q: usize, x: usize) -> f64 {
    let q_len = w.values[q].len() as f64;
    let overlap = w.values[q].len().min(w.values[x].len()) as f64;
    overlap / q_len
}

#[test]
fn every_backend_is_object_safe_and_reports_sane_stats() {
    let w = world();
    for (name, index) in backends(&w) {
        assert_eq!(index.len(), N, "{name}: wrong len");
        assert!(!index.is_empty(), "{name}: empty");
        assert!(index.memory_bytes() > 0, "{name}: no memory accounted");
        assert!(!index.describe().is_empty(), "{name}: empty describe");

        let (id, size, sig) = &w.entries[13];
        let out = index
            .search(&Query::threshold(sig, 0.8).with_size(*size))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            out.ids().contains(id),
            "{name}: exact self-match missing at t*=0.8"
        );
        let s = out.stats;
        assert!(
            s.partitions_probed <= s.partitions_total,
            "{name}: probed {} > total {}",
            s.partitions_probed,
            s.partitions_total
        );
        assert!(s.partitions_total > 0, "{name}: zero partitions");
        assert!(
            s.candidates >= s.survivors,
            "{name}: candidates {} < survivors {}",
            s.candidates,
            s.survivors
        );
        assert_eq!(s.survivors, out.hits.len(), "{name}: survivors ≠ hits");
    }
}

#[test]
fn recall_against_exact_ground_truth() {
    let w = world();
    let indexes = backends(&w);
    for &q in &[7usize, 13, 19] {
        let (_, size, sig) = &w.entries[q];
        for &t in &[0.5, 0.8] {
            // Ground truth through the SAME surface, raw values attached.
            let truth: Vec<DomainId> = DomainIndex::search(
                &w.exact,
                &Query::threshold(sig, t).with_hashes(&w.values[q]),
            )
            .expect("exact search")
            .ids();
            // Size-comparable true answers (x ≤ 3q): the band where the
            // paper's own evaluation expects solid recall (Figure 7 shows
            // recall decaying for x ≫ q).
            let comparable: Vec<DomainId> = truth
                .iter()
                .copied()
                .filter(|&x| w.values[x as usize].len() <= 3 * w.values[q].len())
                .collect();
            assert!(!comparable.is_empty(), "degenerate truth at q={q} t={t}");
            for (name, index) in &indexes {
                let got = index
                    .search(&Query::threshold(sig, t).with_size(*size))
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
                    .ids();
                assert!(got.contains(&(q as DomainId)), "{name}: self missing");
                let found = comparable.iter().filter(|x| got.contains(x)).count();
                assert!(
                    found * 10 >= comparable.len() * 6,
                    "{name} q={q} t={t}: recall {found}/{} over comparable sizes",
                    comparable.len()
                );
            }
        }
    }
}

#[test]
fn containment_estimates_agree_with_exact_scores() {
    let w = world();
    for (name, index) in backends(&w) {
        let q = 13usize;
        let (_, size, sig) = &w.entries[q];
        let out = index
            .search(&Query::threshold(sig, 0.5).with_size(*size))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let with_estimates = out.hits.iter().any(|h| h.estimate.is_some());
        // Ranked backends must estimate; unranked ones must not.
        let should_estimate = matches!(name, "ranked" | "sharded_ranked" | "mmap");
        assert_eq!(
            with_estimates, should_estimate,
            "{name}: estimate presence mismatch"
        );
        if !should_estimate {
            continue;
        }
        for h in &out.hits {
            let est = h.estimate.expect("ranked estimate");
            let exact = exact_containment(&w, q, h.id as usize);
            assert!(
                (est - exact).abs() < 0.25,
                "{name}: id {} estimate {est:.3} vs exact {exact:.3}",
                h.id
            );
        }
        // Estimate order is descending.
        for pair in out.hits.windows(2) {
            assert!(pair[0].estimate >= pair[1].estimate, "{name}: unsorted");
        }
    }
}

#[test]
fn top_k_ranks_the_self_match_first() {
    let w = world();
    for (name, index) in backends(&w) {
        let q = 10usize;
        let (_, size, sig) = &w.entries[q];
        let result = index.search(&Query::top_k(sig, 5).with_size(*size));
        match name {
            "ranked" | "sharded_ranked" | "mmap" => {
                let out = result.unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(out.hits.len(), 5, "{name}: wrong k");
                assert_eq!(out.hits[0].id, q as DomainId, "{name}: self not first");
                assert_eq!(out.hits[0].estimate, Some(1.0), "{name}: self t̂ ≠ 1");
                assert!(
                    out.stats.partitions_probed <= out.stats.partitions_total,
                    "{name}: top-k probe counters inconsistent"
                );
            }
            _ => {
                // Sketch-free-of-estimates backends refuse with a typed
                // error instead of panicking.
                assert!(
                    matches!(result, Err(QueryError::Unsupported(_))),
                    "{name}: expected Unsupported, got {result:?}"
                );
            }
        }
    }
    // The exact engine answers top-k too — with true containments.
    let q = 10usize;
    let (_, _, sig) = &w.entries[q];
    let out = DomainIndex::search(&w.exact, &Query::top_k(sig, 3).with_hashes(&w.values[q]))
        .expect("exact top-k");
    assert_eq!(out.hits.len(), 3);
    assert_eq!(out.hits[0].id, q as DomainId);
    assert_eq!(out.hits[0].estimate, Some(1.0));
}

/// Asserts two search results agree on everything deterministic: the
/// hits (ids AND estimates) and every [`lshe_core::QueryStats`] field
/// except `wall_micros`, which reports timing rather than the answer.
fn assert_result_matches(
    context: &str,
    batched: &Result<lshe_core::SearchOutcome, QueryError>,
    looped: &Result<lshe_core::SearchOutcome, QueryError>,
) {
    match (batched, looped) {
        (Ok(b), Ok(l)) => {
            assert_eq!(b.hits, l.hits, "{context}: hits diverge");
            assert_eq!(
                (
                    b.stats.partitions_probed,
                    b.stats.partitions_total,
                    b.stats.candidates,
                    b.stats.survivors,
                ),
                (
                    l.stats.partitions_probed,
                    l.stats.partitions_total,
                    l.stats.candidates,
                    l.stats.survivors,
                ),
                "{context}: deterministic stats diverge"
            );
        }
        (Err(b), Err(l)) => assert_eq!(b, l, "{context}: errors diverge"),
        (b, l) => panic!("{context}: batched {b:?} vs looped {l:?}"),
    }
}

#[test]
fn search_batch_equals_looped_search_on_every_backend() {
    let w = world();
    // A mixed batch: thresholds across the grid, top-k, estimated sizes,
    // the parallel hint, and malformed queries that must error in
    // position without affecting their neighbours.
    let narrow = MinHasher::new(64).signature([1u64, 2, 3]);
    let mut queries: Vec<Query<'_>> = Vec::new();
    for &(q, t) in &[(3usize, 0.3), (7, 0.5), (13, 0.8), (19, 0.5), (23, 1.0)] {
        let (_, size, sig) = &w.entries[q];
        queries.push(Query::threshold(sig, t).with_size(*size));
    }
    let (_, size5, sig5) = &w.entries[5];
    queries.push(Query::threshold(sig5, 0.5)); // size estimated from the sketch
    queries.push(
        Query::threshold(sig5, 0.6)
            .with_size(*size5)
            .with_parallel(true),
    );
    queries.push(Query::top_k(sig5, 4).with_size(*size5));
    queries.push(Query::top_k(sig5, 500).with_size(*size5)); // k > corpus
    queries.push(Query::threshold(&narrow, 0.5).with_size(3)); // width mismatch
    queries.push(Query::threshold(sig5, 1.5).with_size(*size5)); // bad threshold
    queries.push(Query::top_k(sig5, 0).with_size(*size5)); // k = 0

    for (name, index) in backends(&w) {
        let batched = index.search_batch(&queries);
        assert_eq!(batched.len(), queries.len(), "{name}: result count");
        for (i, (b, q)) in batched.iter().zip(&queries).enumerate() {
            let looped = index.search(q);
            assert_result_matches(&format!("{name} query {i}"), b, &looped);
        }
    }
    // The exact engine answers through the default loop impl; raw hashes
    // attached per query.
    let exact_queries: Vec<Query<'_>> = w
        .entries
        .iter()
        .take(4)
        .map(|(id, size, sig)| {
            Query::threshold(sig, 0.5)
                .with_size(*size)
                .with_hashes(&w.values[*id as usize])
        })
        .collect();
    let batched = DomainIndex::search_batch(&w.exact, &exact_queries);
    for (i, (b, q)) in batched.iter().zip(&exact_queries).enumerate() {
        assert_result_matches(
            &format!("exact query {i}"),
            b,
            &DomainIndex::search(&w.exact, q),
        );
    }
}

#[test]
fn top_k_zero_and_oversized_k_are_normalized() {
    // Pinned semantics, identical on every backend:
    // * `TopK(0)` is `QueryError::Invalid` — validation precedes the
    //   capability check, so even backends that cannot answer top-k at
    //   all report Invalid (not Unsupported) for k = 0;
    // * `k > corpus_len` is NOT an error: backends with sketches return
    //   every domain they can rank (≤ len), backends without report
    //   Unsupported exactly as for any other k.
    let w = world();
    for (name, index) in backends(&w) {
        let (_, size, sig) = &w.entries[6];
        assert!(
            matches!(
                index.search(&Query::top_k(sig, 0).with_size(*size)),
                Err(QueryError::Invalid(_))
            ),
            "{name}: TopK(0) must be Invalid"
        );
        let oversized = index.search(&Query::top_k(sig, 10 * N).with_size(*size));
        match name {
            "ranked" | "sharded_ranked" | "mmap" => {
                let out = oversized.unwrap_or_else(|e| panic!("{name}: oversized k errored: {e}"));
                assert!(
                    !out.hits.is_empty() && out.hits.len() <= N,
                    "{name}: oversized k returned {} hits",
                    out.hits.len()
                );
                assert_eq!(out.stats.survivors, out.hits.len(), "{name}");
            }
            _ => assert!(
                matches!(oversized, Err(QueryError::Unsupported(_))),
                "{name}: oversized k on an unranked backend must stay Unsupported"
            ),
        }
    }
    // The exact engine follows the same rules (true containments).
    let (id, _, sig) = &w.entries[6];
    assert!(matches!(
        DomainIndex::search(
            &w.exact,
            &Query::top_k(sig, 0).with_hashes(&w.values[*id as usize])
        ),
        Err(QueryError::Invalid(_))
    ));
    let out = DomainIndex::search(
        &w.exact,
        &Query::top_k(sig, 10 * N).with_hashes(&w.values[*id as usize]),
    )
    .expect("oversized k is not an error");
    assert!(out.hits.len() <= N);
}

#[test]
fn malformed_queries_are_typed_errors_everywhere() {
    let w = world();
    let narrow = MinHasher::new(64).signature([1u64, 2, 3]);
    for (name, index) in backends(&w) {
        let (_, size, sig) = &w.entries[0];
        // Out-of-range threshold.
        assert!(
            matches!(
                index.search(&Query::threshold(sig, 1.5).with_size(*size)),
                Err(QueryError::Invalid(_))
            ),
            "{name}: bad threshold accepted"
        );
        // Zero k.
        assert!(
            matches!(
                index.search(&Query::top_k(sig, 0).with_size(*size)),
                Err(QueryError::Invalid(_))
            ),
            "{name}: k=0 accepted"
        );
        // Zero size.
        assert!(
            matches!(
                index.search(&Query::threshold(sig, 0.5).with_size(0)),
                Err(QueryError::Invalid(_))
            ),
            "{name}: size=0 accepted"
        );
        // Signature width mismatch.
        assert!(
            matches!(
                index.search(&Query::threshold(&narrow, 0.5).with_size(3)),
                Err(QueryError::Invalid(_))
            ),
            "{name}: width mismatch accepted"
        );
    }
    // The exact engine without raw values is Unsupported, not a panic.
    let (_, _, sig) = &w.entries[0];
    assert!(matches!(
        DomainIndex::search(&w.exact, &Query::threshold(sig, 0.5)),
        Err(QueryError::Unsupported(_))
    ));
}

// ---------------------------------------------------------- mutation phase

/// The four mutable backends, built over arbitrary entries behind the one
/// mutation trait. Sketch-retaining backends get a zero rebalance trigger
/// so every commit rebuilds from sketches — which must reproduce a fresh
/// build on the final corpus exactly.
fn mutable_backends(
    entries: &[(DomainId, u64, Signature)],
) -> Vec<(&'static str, Box<dyn MutableIndex>)> {
    let mut ensemble = LshEnsemble::builder_with(config());
    let mut ranked = RankedIndex::builder_with(config());
    let mut sharded = ShardedEnsemble::builder(3, config());
    let mut ranked_for_shards = RankedIndex::builder_with(config());
    for (id, size, sig) in entries {
        ensemble.add(*id, *size, sig.clone());
        ranked.add(*id, *size, sig.clone());
        sharded.add(*id, *size, sig.clone());
        ranked_for_shards.add(*id, *size, sig.clone());
    }
    let mut ranked = ranked.build();
    ranked.set_rebalance_trigger(0.0);
    let mut sharded_ranked = ShardedRanked::build(Arc::new(ranked_for_shards.build()), 3, config());
    sharded_ranked.set_rebalance_trigger(0.0);
    vec![
        ("ensemble", Box::new(ensemble.build())),
        ("ranked", Box::new(ranked)),
        ("sharded", Box::new(sharded.build())),
        ("sharded_ranked", Box::new(sharded_ranked)),
    ]
}

/// Whether the backend retains sketches — those rebalance on commit, so
/// after mutation they must equal a from-scratch rebuild bit-for-bit.
fn rebalances(name: &str) -> bool {
    matches!(name, "ranked" | "sharded_ranked")
}

/// The mutation plan: 8 new domains (nested among themselves, disjoint
/// from the original pool) and 4 removals spread across size classes.
struct MutationPlan {
    added: Vec<(DomainId, u64, Signature, Vec<u64>)>,
    removed: Vec<DomainId>,
}

fn mutation_plan() -> MutationPlan {
    let hasher = MinHasher::new(256);
    let fresh_pool = MinHasher::synthetic_values(test_seed() ^ 0xABCD, 45 * 8);
    let added = (0..8)
        .map(|k| {
            let vals: Vec<u64> = fresh_pool[..45 * (k + 1)].to_vec();
            let sig = hasher.signature(vals.iter().copied());
            (100 + k as DomainId, vals.len() as u64, sig, vals)
        })
        .collect();
    MutationPlan {
        added,
        removed: vec![1, 5, 9, 16],
    }
}

/// The final corpus after the plan, id-sorted: original entries minus the
/// removed ids, plus the added domains.
fn final_corpus(w: &World, plan: &MutationPlan) -> Vec<(DomainId, u64, Signature, Vec<u64>)> {
    let mut out: Vec<(DomainId, u64, Signature, Vec<u64>)> = w
        .entries
        .iter()
        .filter(|(id, _, _)| !plan.removed.contains(id))
        .map(|(id, size, sig)| (*id, *size, sig.clone(), w.values[*id as usize].clone()))
        .collect();
    out.extend(plan.added.iter().cloned());
    out.sort_unstable_by_key(|&(id, _, _, _)| id);
    out
}

#[test]
fn mutation_equals_rebuild_for_every_mutable_backend() {
    let w = world();
    let plan = mutation_plan();
    let finals = final_corpus(&w, &plan);
    let final_entries: Vec<(DomainId, u64, Signature)> = finals
        .iter()
        .map(|(id, size, sig, _)| (*id, *size, sig.clone()))
        .collect();
    // Exact ground truth over the FINAL corpus, for the recall bar.
    let mut final_catalog = Catalog::new();
    for (_, _, _, vals) in &finals {
        final_catalog.push(
            Domain::from_hashes(vals.clone()),
            DomainMeta::new("t", "col"),
        );
    }
    let exact = ExactIndex::build(&final_catalog);
    // Catalog ids are dense 0..; map a position back to the real id.
    let pos_to_id: Vec<DomainId> = finals.iter().map(|&(id, _, _, _)| id).collect();

    for ((name, mut mutated), (_, rebuilt)) in mutable_backends(&w.entries)
        .into_iter()
        .zip(mutable_backends(&final_entries))
    {
        // Mutate: stage the inserts, remove eagerly, then commit.
        for (id, size, sig, _) in &plan.added {
            mutated
                .insert(*id, *size, sig)
                .unwrap_or_else(|e| panic!("{name}: insert {id}: {e}"));
        }
        assert_eq!(mutated.staged_len(), plan.added.len(), "{name}");
        for id in &plan.removed {
            mutated
                .remove(*id)
                .unwrap_or_else(|e| panic!("{name}: remove {id}: {e}"));
        }
        let report = mutated.commit();
        assert_eq!(report.merged, plan.added.len(), "{name}: merged count");
        assert_eq!(report.rebalanced, rebalances(name), "{name}: rebalance");
        assert_eq!(mutated.staged_len(), 0, "{name}: staged after commit");
        assert_eq!(mutated.len(), finals.len(), "{name}: len after commit");

        // Drive every final-corpus domain as a query through both.
        for (qid, qsize, qsig, qvals) in &finals {
            for &t in &[0.5, 0.8] {
                let q = Query::threshold(qsig, t).with_size(*qsize);
                let m = mutated.search(&q).unwrap_or_else(|e| panic!("{name}: {e}"));
                let r = rebuilt.search(&q).unwrap_or_else(|e| panic!("{name}: {e}"));

                // Removed ids must never resurface.
                for gone in &plan.removed {
                    assert!(
                        !m.ids().contains(gone),
                        "{name} q={qid} t={t}: removed id {gone} returned"
                    );
                }
                // The self match is found by both.
                assert!(m.ids().contains(qid), "{name} q={qid} t={t}: self lost");
                assert!(r.ids().contains(qid), "{name} q={qid} t={t}: self lost");

                if rebalances(name) {
                    // Rebalanced commit ≡ rebuild: identical hits (ids AND
                    // estimates) and identical post-commit partitioning.
                    assert_eq!(m.hits, r.hits, "{name} q={qid} t={t}: hits diverge");
                    assert_eq!(
                        m.stats.partitions_total, r.stats.partitions_total,
                        "{name} q={qid} t={t}: partitions_total diverges"
                    );
                } else if *qsize >= 150 {
                    // No sketches → no rebalance: boundary growth keeps
                    // threshold conversion conservative, but per-query
                    // tuning under drifted upper bounds is allowed to
                    // trade some recall (the paper's Figure 8 drift
                    // effect). Both layouts must clear the same absolute
                    // recall bar against the exact ground truth over the
                    // final corpus — judged on mid/large queries, where
                    // LSH recall is reliable (small queries degrade for
                    // any layout; Figure 7).
                    let truth =
                        DomainIndex::search(&exact, &Query::threshold(qsig, t).with_hashes(qvals))
                            .expect("exact")
                            .ids();
                    let comparable: Vec<DomainId> = truth
                        .iter()
                        .map(|&p| pos_to_id[p as usize])
                        .filter(|&x| {
                            let xlen = finals
                                .iter()
                                .find(|(id, _, _, _)| *id == x)
                                .map(|(_, s, _, _)| *s)
                                .expect("truth id in finals");
                            xlen <= 3 * qsize
                        })
                        .collect();
                    let found_m = comparable.iter().filter(|x| m.ids().contains(x)).count();
                    let found_r = comparable.iter().filter(|x| r.ids().contains(x)).count();
                    for (label, found) in [("mutated", found_m), ("rebuilt", found_r)] {
                        assert!(
                            found * 10 >= comparable.len() * 6,
                            "{name} q={qid} t={t}: {label} recall {found}/{}",
                            comparable.len()
                        );
                    }
                }
                assert!(
                    m.stats.partitions_probed <= m.stats.partitions_total,
                    "{name} q={qid} t={t}: probe counters inconsistent"
                );
            }
        }

        // Top-k after mutation matches the rebuild too (ranked backends).
        if rebalances(name) {
            let (qid, qsize, qsig, _) = &finals[10];
            let m = mutated
                .search(&Query::top_k(qsig, 6).with_size(*qsize))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let r = rebuilt
                .search(&Query::top_k(qsig, 6).with_size(*qsize))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(m.hits, r.hits, "{name}: top-k diverges after mutation");
            assert_eq!(m.hits[0].id, *qid, "{name}: self not first");
        }

        // Post-commit mutations still validate with typed errors.
        let (id0, size0, sig0, _) = &finals[0];
        assert_eq!(
            mutated.insert(*id0, *size0, sig0),
            Err(lshe_core::MutationError::DuplicateId(*id0)),
            "{name}"
        );
        assert_eq!(
            mutated.remove(9_999),
            Err(lshe_core::MutationError::UnknownId(9_999)),
            "{name}"
        );
    }
}

/// The four mutable backends with rebalancing disabled (trigger = ∞), so
/// a commit is guaranteed to SEAL — segments and tombstones persist until
/// an explicit `compact()` — exercising the tiered lifecycle end to end.
fn segmented_backends(
    entries: &[(DomainId, u64, Signature)],
) -> Vec<(&'static str, Box<dyn MutableIndex>)> {
    let mut ensemble = LshEnsemble::builder_with(config());
    let mut ranked = RankedIndex::builder_with(config());
    let mut sharded = ShardedEnsemble::builder(3, config());
    let mut ranked_for_shards = RankedIndex::builder_with(config());
    for (id, size, sig) in entries {
        ensemble.add(*id, *size, sig.clone());
        ranked.add(*id, *size, sig.clone());
        sharded.add(*id, *size, sig.clone());
        ranked_for_shards.add(*id, *size, sig.clone());
    }
    let mut ranked = ranked.build();
    ranked.set_rebalance_trigger(f64::MAX);
    let mut sharded_ranked = ShardedRanked::build(Arc::new(ranked_for_shards.build()), 3, config());
    sharded_ranked.set_rebalance_trigger(f64::MAX);
    vec![
        ("ensemble", Box::new(ensemble.build())),
        ("ranked", Box::new(ranked)),
        ("sharded", Box::new(sharded.build())),
        ("sharded_ranked", Box::new(sharded_ranked)),
    ]
}

#[test]
fn segmented_commit_then_compaction_conforms_on_every_mutable_backend() {
    let w = world();
    let plan = mutation_plan();
    let finals = final_corpus(&w, &plan);
    let final_entries: Vec<(DomainId, u64, Signature)> = finals
        .iter()
        .map(|(id, size, sig, _)| (*id, *size, sig.clone()))
        .collect();

    for ((name, mut mutated), (_, rebuilt)) in segmented_backends(&w.entries)
        .into_iter()
        .zip(mutable_backends(&final_entries))
    {
        for (id, size, sig, _) in &plan.added {
            mutated
                .insert(*id, *size, sig)
                .unwrap_or_else(|e| panic!("{name}: insert {id}: {e}"));
        }
        for id in &plan.removed {
            mutated
                .remove(*id)
                .unwrap_or_else(|e| panic!("{name}: remove {id}: {e}"));
        }

        // Commit seals — O(staged delta): the base partitioning is not
        // rebuilt, the delta becomes an immutable segment, and the base
        // removals become tombstones.
        let report = mutated.commit();
        assert!(report.sealed, "{name}: commit did not seal a segment");
        assert!(!report.rebalanced, "{name}: sealed commit must not rebuild");
        assert_eq!(report.merged, plan.added.len(), "{name}: merged count");
        assert!(report.segments >= 1, "{name}: no outstanding segment");
        assert_eq!(
            report.tombstones,
            plan.removed.len(),
            "{name}: tombstone count"
        );
        assert_eq!(mutated.staged_len(), 0, "{name}: staged after seal");
        assert_eq!(mutated.len(), finals.len(), "{name}: len after seal");

        // Segmented phase: queries sweep base + segments. Tombstoned ids
        // never resurface, every live domain still finds itself.
        for (qid, qsize, qsig, _) in &finals {
            for &t in &[0.5, 0.8] {
                let q = Query::threshold(qsig, t).with_size(*qsize);
                let m = mutated.search(&q).unwrap_or_else(|e| panic!("{name}: {e}"));
                for gone in &plan.removed {
                    assert!(
                        !m.ids().contains(gone),
                        "{name} q={qid} t={t}: tombstoned id {gone} returned"
                    );
                }
                assert!(
                    m.ids().contains(qid),
                    "{name} q={qid} t={t}: self lost while segmented"
                );
                assert!(
                    m.stats.partitions_probed <= m.stats.partitions_total,
                    "{name} q={qid} t={t}: probe counters inconsistent"
                );
            }
        }

        // Compaction folds every segment and erases every tombstone — the
        // one O(corpus) step, now off the commit path.
        let folded = mutated.compact();
        assert_eq!(folded.segments, 0, "{name}: segments after compaction");
        assert_eq!(folded.tombstones, 0, "{name}: tombstones after compaction");
        let stats = mutated.segment_stats();
        assert_eq!(
            (stats.segments, stats.tombstones),
            (0, 0),
            "{name}: stats after compaction"
        );
        assert_eq!(mutated.len(), finals.len(), "{name}: len after compaction");

        // Post-compaction conformance: sketch-retaining backends rebuild
        // from the live sketch set, so they must equal a fresh build on
        // the final corpus exactly — identical hits (ids AND estimates)
        // and identical partitioning. Sketch-free backends fold with
        // conservative boundary growth (§6.2) and keep the invariants.
        for (qid, qsize, qsig, _) in &finals {
            for &t in &[0.5, 0.8] {
                let q = Query::threshold(qsig, t).with_size(*qsize);
                let m = mutated.search(&q).unwrap_or_else(|e| panic!("{name}: {e}"));
                let r = rebuilt.search(&q).unwrap_or_else(|e| panic!("{name}: {e}"));
                for gone in &plan.removed {
                    assert!(
                        !m.ids().contains(gone),
                        "{name} q={qid} t={t}: removed id {gone} back after compaction"
                    );
                }
                assert!(m.ids().contains(qid), "{name} q={qid} t={t}: self lost");
                if rebalances(name) {
                    assert_eq!(m.hits, r.hits, "{name} q={qid} t={t}: hits diverge");
                    assert_eq!(
                        m.stats.partitions_total, r.stats.partitions_total,
                        "{name} q={qid} t={t}: partitions_total diverges"
                    );
                }
            }
        }
    }
}

#[test]
fn staged_mutations_are_immediately_queryable() {
    let w = world();
    let plan = mutation_plan();
    for (name, mut index) in mutable_backends(&w.entries) {
        let (id, size, sig, _) = &plan.added[2];
        index.insert(*id, *size, sig).expect("insert");
        // Visible BEFORE commit, via the forests' staged tails.
        let out = index
            .search(&Query::threshold(sig, 0.9).with_size(*size))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.ids().contains(id), "{name}: staged insert invisible");
        assert_eq!(index.staged_len(), 1, "{name}");
        // Eager removal takes it straight back out.
        index.remove(*id).expect("remove staged");
        let out = index
            .search(&Query::threshold(sig, 0.9).with_size(*size))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !out.ids().contains(id),
            "{name}: removed-while-staged found"
        );
        assert_eq!(index.len(), N, "{name}");
    }
}

#[test]
fn parallel_hint_does_not_change_answers() {
    let w = world();
    for (name, index) in backends(&w) {
        let (_, size, sig) = &w.entries[15];
        let seq = index
            .search(&Query::threshold(sig, 0.6).with_size(*size))
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .ids();
        let par = index
            .search(
                &Query::threshold(sig, 0.6)
                    .with_size(*size)
                    .with_parallel(true),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .ids();
        assert_eq!(seq, par, "{name}: parallel hint changed the answer");
    }
}
