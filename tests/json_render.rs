//! Property: the zero-copy `Json::render_into` (what the server's
//! reactor uses to render every response body into a reused
//! per-connection buffer) is byte-identical to the allocating
//! `Json::render`, for arbitrary JSON trees and for realistic server
//! response shapes — including when the target buffer is reused dirty
//! across renders, exactly as the reactor reuses its scratch string.

use lshe_serve::json::Json;
use proptest::prelude::*;

/// Decodes a fuel script into an arbitrary JSON tree: every byte drives
/// one structural choice, so shrinking the script shrinks the tree.
fn decode(fuel: &[u64], depth: usize) -> (Json, usize) {
    let Some(&word) = fuel.first() else {
        return (Json::Null, 0);
    };
    let rest = &fuel[1..];
    let pick = if depth >= 4 { word % 4 } else { word % 6 };
    match pick {
        0 => (Json::Null, 1),
        1 => (Json::Bool(word & 8 != 0), 1),
        2 => {
            // Numbers the server actually emits (counts, micros,
            // estimates) plus hostile ones: negatives, fractions,
            // huge magnitudes, and non-finite (rendered as null).
            let n = match (word >> 3) % 6 {
                0 => word as f64,
                1 => -((word >> 7) as f64),
                2 => (word as f64) / 997.0,
                3 => (word as f64) * 1e150,
                4 => f64::NAN,
                _ => f64::INFINITY,
            };
            (Json::Num(n), 1)
        }
        3 => {
            // Strings that exercise every escape class the writer has.
            let corpus = [
                "",
                "plain",
                "with \"quotes\" and \\backslashes\\",
                "control\u{0}\u{1f}\ttab\nnewline\rcr",
                "unicode: ∂éçt — 表 🚀",
                "/query?x=1&y=2",
            ];
            (
                Json::Str(corpus[(word >> 3) as usize % corpus.len()].to_owned()),
                1,
            )
        }
        4 => {
            let want = ((word >> 3) % 4) as usize;
            let mut items = Vec::new();
            let mut used = 1;
            for _ in 0..want {
                let (child, n) = decode(&rest[used - 1..], depth + 1);
                items.push(child);
                used += n;
                if used > rest.len() {
                    break;
                }
            }
            (Json::Arr(items), used)
        }
        _ => {
            let want = ((word >> 3) % 4) as usize;
            let mut fields = Vec::new();
            let mut used = 1;
            for i in 0..want {
                let (child, n) = decode(&rest[used - 1..], depth + 1);
                fields.push((format!("k{i}\"esc"), child));
                used += n;
                if used > rest.len() {
                    break;
                }
            }
            (Json::Obj(fields), used)
        }
    }
}

/// A realistic `/query` response body, the hot shape on a serving path.
fn query_response(hits: usize, cached: bool) -> Json {
    Json::Obj(vec![
        (
            "hits".to_owned(),
            Json::Arr(
                (0..hits)
                    .map(|i| {
                        Json::Obj(vec![
                            ("id".to_owned(), Json::Num(i as f64)),
                            ("table".to_owned(), Json::Str(format!("t{i}"))),
                            ("column".to_owned(), Json::Str("col \"x\"".to_owned())),
                            ("estimate".to_owned(), Json::Num(0.7 + i as f64 / 100.0)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("count".to_owned(), Json::Num(hits as f64)),
        ("cached".to_owned(), Json::Bool(cached)),
        ("generation".to_owned(), Json::Num(3.0)),
        ("query_time_us".to_owned(), Json::Num(123.0)),
    ])
}

proptest! {
    /// Headline property: render_into ≡ render, byte for byte, for
    /// arbitrary trees — including into a dirty, reused buffer.
    #[test]
    fn render_into_matches_render(
        script in prop::collection::vec(0u64..u64::MAX, 1..48),
    ) {
        let (value, _) = decode(&script, 0);
        let allocating = value.render();

        // Fresh buffer.
        let mut buf = String::new();
        value.render_into(&mut buf);
        prop_assert_eq!(&buf, &allocating);

        // Reused buffer with junk capacity, cleared between renders —
        // the reactor's scratch-string discipline.
        let mut scratch = String::with_capacity(4096);
        scratch.push_str("LEFTOVER PREVIOUS RESPONSE");
        scratch.clear();
        value.render_into(&mut scratch);
        prop_assert_eq!(&scratch, &allocating);

        // Append semantics: rendering after existing content must only
        // ever append (the buffer's prefix is untouched).
        let mut tail = String::from("prefix:");
        value.render_into(&mut tail);
        prop_assert_eq!(&tail[.."prefix:".len()], "prefix:");
        prop_assert_eq!(&tail["prefix:".len()..], &allocating);

        // Whatever we rendered must re-parse to a value that renders the
        // same way (round-trip stability of the writer).
        let reparsed = Json::parse(&allocating);
        prop_assert!(reparsed.is_ok(), "unparseable output: {}", allocating);
        prop_assert_eq!(reparsed.expect("parsed").render(), allocating);
    }
}

#[test]
fn server_response_corpus_is_identical_across_renderers() {
    // Deterministic sweep over the response shapes the server emits,
    // rendered through ONE reused scratch buffer in sequence — any
    // cross-contamination between renders would break equality.
    let corpus: Vec<Json> = (0..32)
        .map(|i| query_response(i % 7, i % 2 == 0))
        .chain([
            Json::Obj(vec![
                ("status".to_owned(), Json::Str("ok".to_owned())),
                ("domains".to_owned(), Json::Num(6.0)),
            ]),
            Json::Obj(vec![(
                "error".to_owned(),
                Json::Str("field \"values\" must not be empty".to_owned()),
            )]),
            Json::Arr(vec![]),
            Json::Obj(vec![]),
        ])
        .collect();
    let mut scratch = String::new();
    for value in &corpus {
        let allocating = value.render();
        scratch.clear();
        value.render_into(&mut scratch);
        assert_eq!(scratch, allocating, "renderers diverged on {allocating}");
    }
}
