//! Loopback integration test of `lshe-serve`: boots the real server on an
//! ephemeral port and exercises every endpoint over actual TCP — including
//! sustained concurrent load (≥ 10k requests across ≥ 4 client threads),
//! result correctness against the direct `IndexContainer::search` path,
//! cache hits, batched queries, a hot `/reload` mid-traffic, and graceful
//! shutdown.

use lshe_corpus::{Catalog, Domain, DomainMeta};
use lshe_serve::client::HttpClient as Client;
use lshe_serve::container::IndexContainer;
use lshe_serve::engine::Engine;
use lshe_serve::json::Json;
use lshe_serve::server::{start, ServerConfig};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- helpers

/// `n` domains where domain `k` holds the strings `v0 … v{19 + 5k}` — a
/// nested chain, so small domains are contained in every larger one.
fn build_catalog(n: usize) -> Catalog {
    let mut catalog = Catalog::new();
    for k in 0..n {
        let values: Vec<String> = (0..20 + 5 * k).map(|i| format!("v{i}")).collect();
        catalog.push(
            Domain::from_strs(values.iter().map(String::as_str)),
            DomainMeta::new(format!("t{k}"), "col"),
        );
    }
    catalog
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lshe_serve_smoke_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The string values of query `k` (exactly domain `k`'s value set).
fn query_values(k: usize) -> Vec<String> {
    (0..20 + 5 * k).map(|i| format!("v{i}")).collect()
}

fn query_body(k: usize, threshold: f64) -> String {
    let quoted: Vec<String> = query_values(k).iter().map(|v| format!("\"{v}\"")).collect();
    format!(
        "{{\"values\": [{}], \"threshold\": {threshold}}}",
        quoted.join(",")
    )
}

/// Hit ids from a `/query` response object.
fn hit_ids(response: &Json) -> Vec<u64> {
    response
        .get("hits")
        .and_then(Json::as_array)
        .expect("hits array")
        .iter()
        .map(|h| h.get("id").and_then(Json::as_u64).expect("hit id"))
        .collect()
}

/// The direct-search reference: ids from `IndexContainer::search` for the
/// same values/threshold, order-insensitive.
fn expected_ids(container: &IndexContainer, k: usize, threshold: f64) -> Vec<u64> {
    let values = query_values(k);
    let domain = Domain::from_strs(values.iter().map(String::as_str));
    let hasher = lshe_minhash::MinHasher::new(container.num_perm());
    let sig = domain.signature(&hasher);
    let mut ids: Vec<u64> = container
        .search(&sig, domain.len() as u64, threshold)
        .into_iter()
        .map(|(id, _)| u64::from(id))
        .collect();
    ids.sort_unstable();
    ids
}

// ------------------------------------------------------------------ tests

#[test]
fn every_endpoint_roundtrips() {
    let dir = scratch("endpoints");
    let index_path = dir.join("idx.lshe");
    let container = IndexContainer::build(&build_catalog(12), 4, true);
    std::fs::write(&index_path, container.to_bytes()).expect("write index");

    let engine = Engine::load(&index_path, 1).expect("engine");
    let server = start(
        Arc::new(engine),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr);

    // GET /health
    let (status, health) = client.get("/health");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("domains").and_then(Json::as_u64), Some(12));
    assert_eq!(health.get("generation").and_then(Json::as_u64), Some(1));

    // POST /query — identical results to the direct container path.
    let (status, response) = client.post("/query", &query_body(3, 0.7));
    assert_eq!(status, 200, "{response}");
    let mut got = hit_ids(&response);
    got.sort_unstable();
    assert_eq!(got, expected_ids(&container, 3, 0.7), "query disagrees");
    assert_eq!(response.get("cached"), Some(&Json::Bool(false)));

    // Same query again: cache hit, same hits.
    let (_, cached) = client.post("/query", &query_body(3, 0.7));
    assert_eq!(cached.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(cached.get("hits"), response.get("hits"));

    // POST /topk
    let (status, topk) = client.post(
        "/topk",
        &format!(
            "{{\"values\": [{}], \"k\": 4}}",
            query_values(2)
                .iter()
                .map(|v| format!("\"{v}\""))
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    assert_eq!(status, 200, "{topk}");
    assert_eq!(topk.get("count").and_then(Json::as_u64), Some(4));
    // Estimates attached and descending.
    let hits = topk.get("hits").and_then(Json::as_array).expect("hits");
    let estimates: Vec<f64> = hits
        .iter()
        .map(|h| h.get("estimate").and_then(Json::as_f64).expect("estimate"))
        .collect();
    for w in estimates.windows(2) {
        assert!(w[0] >= w[1], "top-k not sorted: {estimates:?}");
    }

    // POST /batch — 6 queries, order preserved.
    let batch_body = format!(
        "{{\"queries\": [{}]}}",
        (0..6)
            .map(|k| query_body(k, 0.9))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, batch) = client.post("/batch", &batch_body);
    assert_eq!(status, 200, "{batch}");
    let results = batch.get("results").and_then(Json::as_array).expect("arr");
    assert_eq!(results.len(), 6);
    for (k, result) in results.iter().enumerate() {
        let mut got: Vec<u64> = result
            .get("hits")
            .and_then(Json::as_array)
            .expect("hits")
            .iter()
            .map(|h| h.get("id").and_then(Json::as_u64).expect("id"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected_ids(&container, k, 0.9), "batch entry {k}");
    }

    // POST /reload — same file, new generation; old answers stay correct.
    let (status, reloaded) = client.post("/reload", "");
    assert_eq!(status, 200, "{reloaded}");
    assert_eq!(reloaded.get("generation").and_then(Json::as_u64), Some(2));
    let (_, after) = client.post("/query", &query_body(3, 0.7));
    let mut got = hit_ids(&after);
    got.sort_unstable();
    assert_eq!(got, expected_ids(&container, 3, 0.7), "post-reload query");
    assert_eq!(after.get("cached"), Some(&Json::Bool(false)), "new gen");

    // Reload from an explicit (larger) index file.
    let bigger = dir.join("bigger.lshe");
    std::fs::write(
        &bigger,
        IndexContainer::build(&build_catalog(16), 4, true).to_bytes(),
    )
    .expect("write");
    let (status, reloaded) = client.post(
        "/reload",
        &format!(
            "{{\"path\": {}}}",
            Json::str(bigger.to_str().expect("utf8")).render()
        ),
    );
    assert_eq!(status, 200, "{reloaded}");
    assert_eq!(reloaded.get("domains").and_then(Json::as_u64), Some(16));

    // Opt-in per-query debug: execution counters ride along on /query.
    let (status, debugged) = client.post(
        "/query",
        &format!(
            "{{\"values\": [{}], \"threshold\": 0.7, \"debug\": true}}",
            query_values(5)
                .iter()
                .map(|v| format!("\"{v}\""))
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    assert_eq!(status, 200, "{debugged}");
    let debug = debugged.get("debug").expect("debug object");
    let probed = debug
        .get("partitions_probed")
        .and_then(Json::as_u64)
        .expect("probed");
    let total = debug
        .get("partitions_total")
        .and_then(Json::as_u64)
        .expect("total");
    assert!(probed <= total, "{debug}");
    assert!(
        debug.get("candidates").and_then(Json::as_u64).expect("c")
            >= debug.get("survivors").and_then(Json::as_u64).expect("s"),
        "{debug}"
    );

    // GET /stats reflects the traffic, including aggregated QueryStats
    // from every executed (non-cached) search.
    let (status, stats) = client.get("/stats");
    assert_eq!(status, 200);
    assert_eq!(stats.get("domains").and_then(Json::as_u64), Some(16));
    let requests = stats.get("requests").expect("requests");
    assert!(requests.get("query").and_then(Json::as_u64).expect("n") >= 3);
    assert_eq!(requests.get("batch").and_then(Json::as_u64), Some(1));
    assert_eq!(requests.get("reload").and_then(Json::as_u64), Some(2));
    let cache = stats.get("cache").expect("cache");
    assert!(cache.get("hits").and_then(Json::as_u64).expect("hits") >= 1);
    let totals = stats.get("query_stats").expect("query_stats");
    let executed = totals
        .get("executed")
        .and_then(Json::as_u64)
        .expect("executed");
    assert!(
        executed >= 3,
        "expected several executed searches: {totals}"
    );
    assert!(
        totals
            .get("partitions_probed")
            .and_then(Json::as_u64)
            .expect("probed")
            >= executed,
        "each executed search probes ≥ 1 partition: {totals}"
    );
    assert!(
        totals.get("candidates").and_then(Json::as_u64).expect("c")
            >= totals.get("survivors").and_then(Json::as_u64).expect("s"),
        "{totals}"
    );
    assert!(totals.get("wall_micros").and_then(Json::as_u64).is_some());

    // Error paths keep the connection usable (4xx, not a disconnect).
    let (status, _) = client.post("/query", "{\"values\": []}");
    assert_eq!(status, 400);
    let (status, _) = client.get("/nope");
    assert_eq!(status, 404);
    let (status, _) = client.get("/query");
    assert_eq!(status, 405);
    let (status, _) = client.get("/health");
    assert_eq!(status, 200, "connection survived the errors");

    server.shutdown();
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "listener still accepting after shutdown"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance-criteria test: ≥ 10k single-query requests across ≥ 4
/// concurrent client threads with zero dropped connections, results
/// identical to direct `IndexContainer::search`, a measured cache hit-rate
/// > 0, and a successful hot `/reload` under load.
#[test]
fn sustained_concurrent_load_with_hot_reload() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 2_500;
    const DISTINCT_QUERIES: usize = 12;
    const THRESHOLD: f64 = 0.8;

    let dir = scratch("load");
    let index_path = dir.join("idx.lshe");
    let container = IndexContainer::build(&build_catalog(20), 4, true);
    std::fs::write(&index_path, container.to_bytes()).expect("write index");

    // Reference answers from the direct search path (same bytes).
    let reference =
        IndexContainer::from_bytes(&std::fs::read(&index_path).expect("read")).expect("decode");
    let expected: Vec<Vec<u64>> = (0..DISTINCT_QUERIES)
        .map(|k| expected_ids(&reference, k, THRESHOLD))
        .collect();
    let bodies: Arc<Vec<String>> = Arc::new(
        (0..DISTINCT_QUERIES)
            .map(|k| query_body(k, THRESHOLD))
            .collect(),
    );
    let expected = Arc::new(expected);

    let engine = Engine::load(&index_path, 1).expect("engine");
    let server = start(
        Arc::new(engine),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_capacity: 512,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let client_threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for i in 0..REQUESTS_PER_CLIENT {
                    let k = (c + i) % DISTINCT_QUERIES;
                    let (status, response) = client.post("/query", &bodies[k]);
                    assert_eq!(status, 200, "client {c} request {i}: {response}");
                    let mut got = hit_ids(&response);
                    got.sort_unstable();
                    assert_eq!(
                        got, expected[k],
                        "client {c} request {i} (query {k}) wrong hits"
                    );
                }
            })
        })
        .collect();

    // Hot-reload the index (same file) repeatedly while traffic flows.
    let mut admin = Client::connect(addr);
    let mut reloads = 0u64;
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(40));
        let (status, response) = admin.post("/reload", "");
        assert_eq!(status, 200, "reload under load failed: {response}");
        reloads += 1;
    }

    for handle in client_threads {
        handle
            .join()
            .expect("client thread panicked — dropped connection or wrong results");
    }

    let (status, stats) = admin.get("/stats");
    assert_eq!(status, 200);
    let requests = stats.get("requests").expect("requests");
    assert_eq!(
        requests.get("query").and_then(Json::as_u64),
        Some((CLIENTS * REQUESTS_PER_CLIENT) as u64),
        "all {CLIENTS}×{REQUESTS_PER_CLIENT} queries must be served"
    );
    assert_eq!(requests.get("reload").and_then(Json::as_u64), Some(reloads));
    let cache = stats.get("cache").expect("cache");
    let hits = cache.get("hits").and_then(Json::as_u64).expect("hits");
    assert!(
        hits > 0,
        "repeated queries must produce cache hits: {cache}"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Live ingestion under concurrent query load: one writer hammers
/// `/insert` + `/commit` (with a hot `/reload` thrown mid-stream — the
/// reload-during-insert race) while 3 clients query continuously. Zero
/// failed requests; pre-insert snapshots stay consistent (the original
/// corpus answers never change, whatever generation serves them); after
/// the final commit every surviving inserted domain is queryable and the
/// staged backlog is empty.
#[test]
fn live_ingestion_under_concurrent_query_load() {
    const READERS: usize = 3;
    const READS_PER_CLIENT: usize = 600;
    const INSERTS: usize = 20;
    const THRESHOLD: f64 = 0.8;

    let dir = scratch("ingest");
    let index_path = dir.join("idx.lshe");
    let container = IndexContainer::build(&build_catalog(16), 4, true);
    std::fs::write(&index_path, container.to_bytes()).expect("write index");

    // Reference answers for the original corpus: inserted domains use a
    // disjoint value namespace ("w…"), so these answers must hold across
    // every generation, before and after each commit.
    let reference =
        IndexContainer::from_bytes(&std::fs::read(&index_path).expect("read")).expect("decode");
    let expected: Arc<Vec<Vec<u64>>> = Arc::new(
        (0..8)
            .map(|k| expected_ids(&reference, k, THRESHOLD))
            .collect(),
    );
    let bodies: Arc<Vec<String>> = Arc::new((0..8).map(|k| query_body(k, THRESHOLD)).collect());

    let engine = Engine::load(&index_path, 1).expect("engine");
    let server = start(
        Arc::new(engine),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let readers: Vec<_> = (0..READERS)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for i in 0..READS_PER_CLIENT {
                    let k = (c + i) % bodies.len();
                    let (status, response) = client.post("/query", &bodies[k]);
                    assert_eq!(status, 200, "reader {c} req {i}: {response}");
                    let mut got = hit_ids(&response);
                    got.retain(|&id| id < 16); // inserted ids may appear post-commit
                    got.sort_unstable();
                    assert_eq!(
                        got, expected[k],
                        "reader {c} req {i} (query {k}): original-corpus answers drifted"
                    );
                }
            })
        })
        .collect();

    // The writer: 20 inserts, a commit every 5, a /reload mid-stream, one
    // /remove of an inserted id, and a final commit.
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        let mut inserted: Vec<(u64, usize)> = Vec::new();
        for k in 0..INSERTS {
            let values: Vec<String> = (0..25 + 3 * k).map(|i| format!("\"w{k}_{i}\"")).collect();
            let body = format!(
                "{{\"values\": [{}], \"table\": \"live{k}\", \"column\": \"c\"}}",
                values.join(",")
            );
            let (status, response) = client.post("/insert", &body);
            assert_eq!(status, 200, "insert {k}: {response}");
            let id = response.get("id").and_then(Json::as_u64).expect("id");
            inserted.push((id, k));
            if k == 7 {
                // The reload-during-insert race: hot-swap the (committed)
                // base file while mutations are staged.
                let (status, response) = client.post("/reload", "");
                assert_eq!(status, 200, "reload during staging: {response}");
            }
            if k == 11 {
                let victim = inserted[10].0;
                let (status, response) = client.post("/remove", &format!("{{\"id\": {victim}}}"));
                assert_eq!(status, 200, "remove staged insert: {response}");
                inserted.retain(|&(id, _)| id != victim);
            }
            if k % 5 == 4 {
                let (status, response) = client.post("/commit", "");
                assert_eq!(status, 200, "commit at {k}: {response}");
            }
        }
        let (status, response) = client.post("/commit", "");
        assert_eq!(status, 200, "final commit: {response}");
        inserted
    });

    let inserted = writer.join().expect("writer panicked");
    for handle in readers {
        handle
            .join()
            .expect("reader panicked — error or stale answer");
    }

    // Every surviving inserted domain answers its own query post-commit.
    let mut client = Client::connect(addr);
    for &(id, k) in &inserted {
        let values: Vec<String> = (0..25 + 3 * k).map(|i| format!("\"w{k}_{i}\"")).collect();
        let body = format!("{{\"values\": [{}], \"threshold\": 0.9}}", values.join(","));
        let (status, response) = client.post("/query", &body);
        assert_eq!(status, 200, "{response}");
        assert!(
            hit_ids(&response).contains(&id),
            "inserted domain {id} (live{k}) invisible post-commit: {response}"
        );
    }

    // Staged backlog drained; no server-side errors beyond none expected.
    let (status, stats) = client.get("/stats");
    assert_eq!(status, 200);
    let staged = stats.get("staged").expect("staged");
    assert_eq!(staged.get("inserts").and_then(Json::as_u64), Some(0));
    assert_eq!(staged.get("removes").and_then(Json::as_u64), Some(0));
    let requests = stats.get("requests").expect("requests");
    assert_eq!(
        requests.get("insert").and_then(Json::as_u64),
        Some(INSERTS as u64)
    );
    assert_eq!(requests.get("remove").and_then(Json::as_u64), Some(1));
    assert_eq!(requests.get("errors").and_then(Json::as_u64), Some(0));
    assert_eq!(
        requests.get("query").and_then(Json::as_u64),
        Some((READERS * READS_PER_CLIENT + inserted.len()) as u64)
    );
    let domains = stats
        .get("domains")
        .and_then(Json::as_u64)
        .expect("domains");
    assert_eq!(domains, 16 + inserted.len() as u64);

    // The committed state is durable: commits seal into the delta log
    // (one marker per batch), and whenever a background maintenance
    // merge runs it persists the folded base and retires the committed
    // log prefix — so whether the log still exists here depends on how
    // the merges raced the final commit. Either way, a fresh engine
    // loads base + log to exactly the committed corpus.
    server.shutdown();
    let log = lshe_serve::container::DeltaLog::sidecar(&index_path);
    let reloaded = Engine::load(&index_path, 1).expect("reload committed file");
    assert_eq!(reloaded.snapshot().container().len(), 16 + inserted.len());
    reloaded.compact().expect("compact");
    assert!(!log.exists(), "compaction must retire the delta log");
    let compacted = Engine::load(&index_path, 1).expect("reload compacted file");
    assert_eq!(compacted.snapshot().container().len(), 16 + inserted.len());
    std::fs::remove_dir_all(&dir).ok();
}

/// `--shards N` wiring: the sharded engine answers over HTTP with the
/// paper's fan-out/union topology and still finds the query's own domain.
#[test]
fn sharded_engine_serves_fanout_queries() {
    let dir = scratch("sharded");
    let index_path = dir.join("idx.lshe");
    std::fs::write(
        &index_path,
        IndexContainer::build(&build_catalog(24), 4, true).to_bytes(),
    )
    .expect("write index");

    let engine = Engine::load(&index_path, 3).expect("sharded engine");
    let server = start(
        Arc::new(engine),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr());

    let (status, health) = client.get("/health");
    assert_eq!(status, 200);
    assert_eq!(health.get("shards").and_then(Json::as_u64), Some(3));

    for k in [0usize, 7, 17] {
        let (status, response) = client.post("/query", &query_body(k, 0.8));
        assert_eq!(status, 200, "{response}");
        let ids = hit_ids(&response);
        assert!(
            ids.contains(&(k as u64)),
            "shard fan-out missed query {k}'s own domain: {response}"
        );
        // Sharded results always carry estimates.
        for h in response.get("hits").and_then(Json::as_array).expect("hits") {
            assert!(h.get("estimate").and_then(Json::as_f64).is_some());
        }
    }

    // An unranked index cannot be sharded — the engine refuses up front.
    let plain = dir.join("plain.lshe");
    std::fs::write(
        &plain,
        IndexContainer::build(&build_catalog(8), 2, false).to_bytes(),
    )
    .expect("write");
    assert!(Engine::load(Path::new(&plain), 2).is_err());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI path: `lshe index` with the new bare `--ranked` flag produces a
/// file the serve engine loads directly.
#[test]
fn cli_built_index_is_servable() {
    let dir = scratch("cli_index");
    std::fs::write(
        dir.join("registry.csv"),
        "company,sector\nacme,mfg\nborealis,ai\ncanaduck,aero\ndelta,energy\nevergreen,bio\n\
         falcon,mining\nglacier,sw\nharbour,log\nivory,sw\njuniper,agri\n",
    )
    .expect("write");
    std::fs::write(
        dir.join("grants.csv"),
        "partner,year\nacme,2011\nborealis,2011\ncanaduck,2011\ndelta,2011\nevergreen,2011\n\
         falcon,2012\nglacier,2012\nharbour,2012\n",
    )
    .expect("write");
    let index_path = dir.join("t.lshe");
    lshe_cli::run(&[
        "index".to_owned(),
        "--dir".to_owned(),
        dir.to_str().expect("utf8").to_owned(),
        "--out".to_owned(),
        index_path.to_str().expect("utf8").to_owned(),
        "--partitions".to_owned(),
        "4".to_owned(),
        "--min-size".to_owned(),
        "5".to_owned(),
        "--ranked".to_owned(), // bare boolean flag
    ])
    .expect("cli index");

    let engine = Engine::load(&index_path, 1).expect("engine");
    let server = start(
        Arc::new(engine),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            cache_capacity: 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr());
    // grants.partner ⊆ registry.company: the server must surface the join.
    let quoted: Vec<String> = [
        "acme",
        "borealis",
        "canaduck",
        "delta",
        "evergreen",
        "falcon",
        "glacier",
        "harbour",
    ]
    .iter()
    .map(|v| format!("\"{v}\""))
    .collect();
    let (status, response) = client.post(
        "/query",
        &format!("{{\"values\": [{}], \"threshold\": 0.9}}", quoted.join(",")),
    );
    assert_eq!(status, 200, "{response}");
    let tables: Vec<&str> = response
        .get("hits")
        .and_then(Json::as_array)
        .expect("hits")
        .iter()
        .filter_map(|h| h.get("table").and_then(Json::as_str))
        .collect();
    assert!(
        tables.contains(&"registry"),
        "join not found over HTTP: {response}"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Pipelining: many requests written before any response is read must be
/// answered strictly in request order on one connection — including when
/// slow uncached queries (compute-pool round trips) interleave with fast
/// inline endpoints, which is exactly the reordering hazard a
/// readiness-driven server has that a thread-per-connection server
/// doesn't.
#[test]
fn pipelined_responses_arrive_in_request_order() {
    let dir = scratch("pipeline");
    let index_path = dir.join("idx.lshe");
    let container = IndexContainer::build(&build_catalog(12), 4, true);
    std::fs::write(&index_path, container.to_bytes()).expect("write index");

    let engine = Engine::load(&index_path, 1).expect("engine");
    let server = start(
        Arc::new(engine),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr());

    // Interleave slow (uncached query: sketch + search on the pool) and
    // fast (inline /health) requests, 12 deep, all written up front.
    let mut sent: Vec<(&str, String)> = Vec::new();
    for k in 0..6 {
        sent.push(("query", query_body(k, 0.8)));
        sent.push(("health", String::new()));
    }
    for (kind, body) in &sent {
        match *kind {
            "query" => client.send("POST", "/query", Some(body)),
            _ => client.send("GET", "/health", None),
        }
    }
    // Responses come back in exactly the order the requests went out:
    // query k's answer (checked against the direct search path) in the
    // even slots, /health in the odd ones.
    for (i, (kind, _)) in sent.iter().enumerate() {
        let (status, body) = client.read_response();
        assert_eq!(status, 200, "slot {i}: {body}");
        let response = Json::parse(&body).expect("json");
        match *kind {
            "query" => {
                let mut got = hit_ids(&response);
                got.sort_unstable();
                assert_eq!(
                    got,
                    expected_ids(&container, i / 2, 0.8),
                    "slot {i}: wrong answer — pipelined responses reordered"
                );
            }
            _ => {
                assert_eq!(
                    response.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "slot {i} should be /health: {response}"
                );
            }
        }
    }

    // The server observed the burst: pipeline depth high-water ≥ 2 and
    // the connection gauge is live.
    let (_, stats) = client.get("/stats");
    let srv = stats.get("server").expect("server stats object");
    assert!(
        srv.get("pipeline_depth_hwm")
            .and_then(Json::as_u64)
            .expect("hwm")
            >= 2,
        "{srv}"
    );
    assert!(
        srv.get("open_connections")
            .and_then(Json::as_u64)
            .expect("open")
            >= 1,
        "{srv}"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The 10k-connections-without-10k-threads claim, scaled to CI: ≥ 256
/// keep-alive connections held open SIMULTANEOUSLY (visible in the
/// server's own `open_connections` gauge), pushing mixed query / batch /
/// insert traffic with zero failed requests, followed by a commit and a
/// clean `/shutdown` drain.
#[test]
fn high_concurrency_keepalive_connections() {
    const CONNS: usize = 256;
    const QUERIES_PER_CONN: usize = 3;
    const WRITERS: usize = 16; // conns that also stage one insert
    const THRESHOLD: f64 = 0.8;

    let dir = scratch("highconc");
    let index_path = dir.join("idx.lshe");
    let container = IndexContainer::build(&build_catalog(12), 4, true);
    std::fs::write(&index_path, container.to_bytes()).expect("write index");

    let expected: Arc<Vec<Vec<u64>>> = Arc::new(
        (0..8)
            .map(|k| expected_ids(&container, k, THRESHOLD))
            .collect(),
    );
    let bodies: Arc<Vec<String>> = Arc::new((0..8).map(|k| query_body(k, THRESHOLD)).collect());

    let engine = Engine::load(&index_path, 1).expect("engine");
    let server = start(
        Arc::new(engine),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Two rendezvous points: after `connected` every client holds an
    // established, request-proven connection (so the gauge must read ≥
    // CONNS); `release` lets them proceed to traffic + disconnect.
    let connected = Arc::new(std::sync::Barrier::new(CONNS + 1));
    let release = Arc::new(std::sync::Barrier::new(CONNS + 1));

    let clients: Vec<_> = (0..CONNS)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            let expected = Arc::clone(&expected);
            let connected = Arc::clone(&connected);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                // Prove the connection is registered, not just SYN-acked.
                let (status, _) = client.request("GET", "/health", None);
                assert_eq!(status, 200, "conn {c} handshake");
                connected.wait();
                release.wait();
                // Mixed traffic on the held connection.
                for i in 0..QUERIES_PER_CONN {
                    let k = (c + i) % bodies.len();
                    let (status, body) = client.request("POST", "/query", Some(&bodies[k]));
                    assert_eq!(status, 200, "conn {c} query {i}: {body}");
                    let response = Json::parse(&body).expect("json");
                    let mut got = hit_ids(&response);
                    got.retain(|&id| id < 12); // writers' inserts may land
                    got.sort_unstable();
                    assert_eq!(got, expected[k], "conn {c} query {i} wrong hits");
                }
                let batch = format!(
                    "{{\"queries\": [{},{}]}}",
                    bodies[c % 8],
                    bodies[(c + 1) % 8]
                );
                let (status, body) = client.request("POST", "/batch", Some(&batch));
                assert_eq!(status, 200, "conn {c} batch: {body}");
                if c < WRITERS {
                    let values: Vec<String> = (0..25).map(|i| format!("\"hc{c}_{i}\"")).collect();
                    let insert = format!(
                        "{{\"values\": [{}], \"table\": \"hc{c}\", \"column\": \"c\"}}",
                        values.join(",")
                    );
                    let (status, body) = client.request("POST", "/insert", Some(&insert));
                    assert_eq!(status, 200, "conn {c} insert: {body}");
                }
            })
        })
        .collect();

    connected.wait();
    // All CONNS keep-alive connections are open right now — the server
    // must be holding them all (plus this admin one) without a
    // thread-per-connection.
    let mut admin = Client::connect(addr);
    let (_, stats) = admin.get("/stats");
    let open = stats
        .get("server")
        .and_then(|s| s.get("open_connections"))
        .and_then(Json::as_u64)
        .expect("open gauge");
    assert!(
        open >= CONNS as u64,
        "only {open} connections open while {CONNS} clients hold theirs"
    );
    release.wait();

    for (c, handle) in clients.into_iter().enumerate() {
        handle
            .join()
            .unwrap_or_else(|_| panic!("client {c} lost a request under load"));
    }

    // Zero lost, zero errored: every request is accounted for.
    let (status, body) = admin.request("POST", "/commit", None);
    assert_eq!(status, 200, "{body}");
    let (_, stats) = admin.get("/stats");
    let requests = stats.get("requests").expect("requests");
    assert_eq!(requests.get("errors").and_then(Json::as_u64), Some(0));
    assert_eq!(
        requests.get("query").and_then(Json::as_u64),
        Some((CONNS * QUERIES_PER_CONN) as u64)
    );
    assert_eq!(
        requests.get("batch").and_then(Json::as_u64),
        Some(CONNS as u64)
    );
    assert_eq!(
        requests.get("insert").and_then(Json::as_u64),
        Some(WRITERS as u64)
    );
    assert_eq!(
        stats.get("domains").and_then(Json::as_u64),
        Some((12 + WRITERS) as u64),
        "committed inserts must all land"
    );
    assert!(
        stats
            .get("server")
            .and_then(|s| s.get("accepted_total"))
            .and_then(Json::as_u64)
            .expect("accepted")
            >= (CONNS + 1) as u64
    );

    // Clean drain: /shutdown answers 200, the reactor exits, and the
    // listener stops accepting.
    let (status, body) = admin.request("POST", "/shutdown", None);
    assert_eq!(status, 200, "{body}");
    server.join();
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "listener still accepting after drain"
    );
    std::fs::remove_dir_all(&dir).ok();
}
