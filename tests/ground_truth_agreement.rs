//! The exact ground-truth engine must agree with brute-force pairwise
//! computation, and the CSV → catalog → search pipeline must behave like
//! hand-constructed domains end to end.

use bytes::Bytes;
use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_corpus::{Catalog, Domain, DomainMeta, ExactIndex};
use lshe_datagen::{generate_catalog, CorpusConfig};
use lshe_minhash::MinHasher;

#[test]
fn exact_index_matches_brute_force() {
    let catalog = generate_catalog(&CorpusConfig::tiny(400, 55));
    let exact = ExactIndex::build(&catalog);
    for q in (0..catalog.len() as u32).step_by(41) {
        let query = catalog.domain(q);
        for t in [0.1, 0.5, 0.9, 1.0] {
            let got = exact.search(query, t);
            let want: Vec<u32> = catalog
                .iter()
                .filter(|(_, d)| query.containment_in(d) >= t)
                .map(|(id, _)| id)
                .collect();
            assert_eq!(got, want, "query {q} at t = {t}");
        }
    }
}

#[test]
fn exact_scores_match_pairwise_containment() {
    let catalog = generate_catalog(&CorpusConfig::tiny(200, 56));
    let exact = ExactIndex::build(&catalog);
    let query = catalog.domain(7);
    for (id, score) in exact.scores(query) {
        let truth = query.containment_in(catalog.domain(id));
        assert!(
            (score - truth).abs() < 1e-12,
            "domain {id}: {score} vs {truth}"
        );
    }
}

#[test]
fn csv_pipeline_end_to_end() {
    // |city| = 8, |place| = 10, city ⊆ place: Jaccard 0.8, which the tuned
    // LSH selects with probability ≈ 1 (smaller fixtures make the expected
    // LSH recall visibly < 1 and the test flaky by construction).
    let csv_a = "\
name,city
alpha,Toronto
beta,Ottawa
gamma,Montreal
delta,Calgary
eps,Halifax
zeta,Winnipeg
eta,Victoria
theta,Whitehorse
";
    let csv_b = "\
place,country
Toronto,Canada
Ottawa,Canada
Montreal,Canada
Calgary,Canada
Halifax,Canada
Winnipeg,Canada
Victoria,Canada
Whitehorse,Canada
Boston,USA
Seattle,USA
";
    let mut catalog = Catalog::new();
    let a_ids = catalog
        .ingest_csv_bytes("people", Bytes::from_static(csv_a.as_bytes()), 2)
        .expect("csv a");
    let b_ids = catalog
        .ingest_csv_bytes("places", Bytes::from_static(csv_b.as_bytes()), 2)
        .expect("csv b");
    assert_eq!(a_ids.len(), 2);
    assert_eq!(b_ids.len(), 2);

    // people.city ⊂ places.place with containment 1.0.
    let city_id = a_ids[1];
    assert_eq!(catalog.meta(city_id).column, "city");
    let place_id = b_ids[0];
    let city = catalog.domain(city_id);
    assert!((city.containment_in(catalog.domain(place_id)) - 1.0).abs() < 1e-12);

    // The index finds the join column.
    let hasher = MinHasher::new(256);
    let mut builder = LshEnsemble::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 2 },
        ..EnsembleConfig::default()
    });
    for (id, d) in catalog.iter() {
        builder.add(id, d.len() as u64, d.signature(&hasher));
    }
    let index = builder.build();
    let hits = index.query_with_size(&city.signature(&hasher), city.len() as u64, 0.9);
    assert!(
        hits.contains(&place_id),
        "places.place must be found: {hits:?}"
    );
}

#[test]
fn hand_built_and_csv_domains_are_identical() {
    let csv = "col\nx\ny\nz\nx\n";
    let mut catalog = Catalog::new();
    let ids = catalog
        .ingest_csv_bytes("t", Bytes::from_static(csv.as_bytes()), 1)
        .expect("csv");
    let by_hand = Domain::from_strs(["x", "y", "z"]);
    assert_eq!(catalog.domain(ids[0]), &by_hand);
}

#[test]
fn sketch_estimates_track_exact_scores() {
    // The MinHash containment estimate must correlate with exact
    // containment across a real corpus sample.
    let catalog = generate_catalog(&CorpusConfig::tiny(300, 57));
    let hasher = MinHasher::new(256);
    let q: u32 = 3;
    let query = catalog.domain(q);
    let q_sig = query.signature(&hasher);
    let mut worst = 0.0f64;
    for (id, d) in catalog.iter().take(100) {
        let exact_t = query.containment_in(d);
        let est_t = q_sig.containment_in(&d.signature(&hasher), query.len() as f64, d.len() as f64);
        worst = worst.max((exact_t - est_t).abs());
        let _ = id;
    }
    // m = 256 → estimation std-dev ≈ 0.03–0.06 after conversion; 0.25 is a
    // loose 4σ+ envelope that still catches systematic bias.
    assert!(worst < 0.25, "worst containment estimation error {worst}");
}

#[test]
fn catalog_push_and_ingest_share_id_space() {
    let mut catalog = Catalog::new();
    let a = catalog.push(Domain::from_strs(["1"]), DomainMeta::new("m", "c"));
    let ids = catalog
        .ingest_csv_bytes("t", Bytes::from_static(b"h\nv1\nv2\n"), 1)
        .expect("csv");
    assert_eq!(a, 0);
    assert_eq!(ids[0], 1);
    assert_eq!(catalog.len(), 2);
}
