//! End-to-end accuracy: generated corpus → signatures → ensemble → search,
//! measured against exact ground truth. Asserts the paper's qualitative
//! claims at test scale: partitioning buys precision, recall stays high,
//! and the effect strengthens with the partition count.

use lshe_core::{ContainmentSearch, EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_corpus::{Catalog, ExactIndex};
use lshe_datagen::{
    aggregate, generate_catalog, query_accuracy, sample_queries, CorpusConfig, QueryAccuracy,
    SizeBand,
};
use lshe_minhash::{MinHasher, Signature};

struct World {
    catalog: Catalog,
    signatures: Vec<Signature>,
    exact: ExactIndex,
    queries: Vec<u32>,
}

fn world() -> World {
    let catalog = generate_catalog(&CorpusConfig::tiny(3_000, 77));
    let hasher = MinHasher::new(256);
    let signatures: Vec<Signature> = catalog.iter().map(|(_, d)| d.signature(&hasher)).collect();
    let exact = ExactIndex::build(&catalog);
    let queries = sample_queries(&catalog, 120, SizeBand::All, 5);
    World {
        catalog,
        signatures,
        exact,
        queries,
    }
}

fn build(world: &World, strategy: PartitionStrategy) -> LshEnsemble {
    let ids: Vec<u32> = world.catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = world.catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let refs: Vec<&Signature> = world.signatures.iter().collect();
    LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy,
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &refs,
    )
}

fn measure(world: &World, index: &dyn ContainmentSearch, t_star: f64) -> (f64, f64) {
    let per_query: Vec<QueryAccuracy> = world
        .queries
        .iter()
        .map(|&q| {
            let truth = world.exact.search(world.catalog.domain(q), t_star);
            let answer = index.search(
                &world.signatures[q as usize],
                world.catalog.domain(q).len() as u64,
                t_star,
            );
            query_accuracy(&answer, &truth)
        })
        .collect();
    let agg = aggregate(&per_query);
    (agg.precision, agg.recall)
}

#[test]
fn partitioning_improves_precision_keeps_recall() {
    let w = world();
    let baseline = build(&w, PartitionStrategy::Single);
    let ens8 = build(&w, PartitionStrategy::EquiDepth { n: 8 });
    let ens32 = build(&w, PartitionStrategy::EquiDepth { n: 32 });

    let (p1, r1) = measure(&w, &baseline, 0.5);
    let (p8, r8) = measure(&w, &ens8, 0.5);
    let (p32, r32) = measure(&w, &ens32, 0.5);

    // Figure 4's ordering at t* = 0.5.
    assert!(
        p8 > p1,
        "8 partitions must beat baseline precision: {p8} vs {p1}"
    );
    assert!(
        p32 >= p8 - 0.02,
        "32 partitions must not lose precision: {p32} vs {p8}"
    );
    for (label, r) in [("baseline", r1), ("ens8", r8), ("ens32", r32)] {
        assert!(r > 0.8, "{label} recall too low: {r}");
    }
    // Recall may dip slightly with partitioning but must stay close.
    assert!(
        r1 - r32 < 0.1,
        "partitioning cost too much recall: {r1} vs {r32}"
    );
}

#[test]
fn high_threshold_keeps_perfect_matches() {
    let w = world();
    let ens = build(&w, PartitionStrategy::EquiDepth { n: 16 });
    // Every query must find itself at t* = 1.0 (identical signature).
    for &q in &w.queries {
        let hits = ens.search(
            &w.signatures[q as usize],
            w.catalog.domain(q).len() as u64,
            1.0,
        );
        assert!(hits.contains(&q), "query {q} lost its own exact match");
    }
}

#[test]
fn precision_ordering_holds_across_thresholds() {
    let w = world();
    let baseline = build(&w, PartitionStrategy::Single);
    let ens32 = build(&w, PartitionStrategy::EquiDepth { n: 32 });
    let mut wins = 0usize;
    let thresholds = [0.3, 0.5, 0.7];
    for &t in &thresholds {
        let (pb, _) = measure(&w, &baseline, t);
        let (pe, _) = measure(&w, &ens32, t);
        if pe >= pb {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "ensemble precision should dominate the baseline on most thresholds ({wins}/3)"
    );
}

#[test]
fn answers_are_sorted_and_unique() {
    let w = world();
    let ens = build(&w, PartitionStrategy::EquiDepth { n: 8 });
    for &q in w.queries.iter().take(20) {
        let hits = ens.search(
            &w.signatures[q as usize],
            w.catalog.domain(q).len() as u64,
            0.4,
        );
        for pair in hits.windows(2) {
            assert!(pair[0] < pair[1], "ids must be sorted unique: {hits:?}");
        }
    }
}
