//! Property-based equivalence of batched and looped query execution:
//! for ARBITRARY query mixes — threshold and top-k interleaved, explicit
//! and estimated sizes, plus deliberately malformed queries — every
//! backend's `search_batch` must agree with mapping `search` over the
//! same queries, item by item: identical hits (ids and estimates),
//! identical deterministic `QueryStats` fields, and identical typed
//! errors in identical positions. `wall_micros` is the one field allowed
//! to differ (it reports timing, not the answer).
//!
//! The corpus and the seven sketch backends are built once (`OnceLock`)
//! and shared across cases: the property is about query execution, not
//! index construction.

use lshe_core::{
    AsymIndexBuilder, AsymPartitionedIndex, DomainIndex, EnsembleConfig, ForestIndex, LshEnsemble,
    PartitionStrategy, Query, QueryError, RankedIndex, SearchOutcome, ShardedEnsemble,
    ShardedRanked,
};
use lshe_lsh::DomainId;
use lshe_minhash::{MinHasher, Signature};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const N: usize = 16;
const STEP: usize = 20;
const NUM_PERM: usize = 64;

fn config() -> EnsembleConfig {
    EnsembleConfig {
        num_perm: NUM_PERM,
        b_max: 8,
        r_max: 8,
        strategy: PartitionStrategy::EquiDepth { n: 4 },
    }
}

struct World {
    entries: Vec<(DomainId, u64, Signature)>,
    backends: Vec<(&'static str, Box<dyn DomainIndex>)>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let hasher = MinHasher::new(NUM_PERM);
        let pool = MinHasher::synthetic_values(4242, STEP * N);
        let entries: Vec<(DomainId, u64, Signature)> = (0..N)
            .map(|k| {
                let vals = &pool[..STEP * (k + 1)];
                (
                    k as DomainId,
                    vals.len() as u64,
                    hasher.signature(vals.iter().copied()),
                )
            })
            .collect();
        let mut ensemble = LshEnsemble::builder_with(config());
        let mut ranked = RankedIndex::builder_with(config());
        let mut sharded = ShardedEnsemble::builder(3, config());
        let mut forest = ForestIndex::new(config());
        let mut asym = AsymIndexBuilder::new(config());
        for (id, size, sig) in &entries {
            ensemble.add(*id, *size, sig.clone());
            ranked.add(*id, *size, sig.clone());
            sharded.add(*id, *size, sig.clone());
            forest.insert(*id, *size, sig);
            asym.add(*id, *size, sig.clone());
        }
        forest.commit();
        let ranked = Arc::new(ranked.build());
        let sharded_ranked = ShardedRanked::build(Arc::clone(&ranked), 3, config());
        let backends: Vec<(&'static str, Box<dyn DomainIndex>)> = vec![
            ("ensemble", Box::new(ensemble.build())),
            ("ranked", Box::new(ranked)),
            ("sharded", Box::new(sharded.build())),
            ("sharded_ranked", Box::new(sharded_ranked)),
            ("forest", Box::new(forest)),
            ("asym", Box::new(asym.build())),
            (
                "asym_partitioned",
                Box::new(AsymPartitionedIndex::build(&config(), 4, &entries)),
            ),
        ];
        World { entries, backends }
    })
}

/// One decoded batch entry, derived deterministically from a script word.
enum Plan {
    Threshold { q: usize, t: f64, sized: bool },
    TopK { q: usize, k: usize, sized: bool },
    BadThreshold { q: usize },
    BadK { q: usize },
    BadSize { q: usize },
}

fn decode(word: u64) -> Plan {
    let q = (word % N as u64) as usize;
    let param = (word >> 16) % 64;
    let sized = (word >> 32) & 1 == 0;
    match (word >> 8) % 8 {
        // Threshold queries dominate the mix, as in real traffic.
        0..=4 => Plan::Threshold {
            q,
            t: (param % 11) as f64 / 10.0,
            sized,
        },
        5 => Plan::TopK {
            q,
            k: 1 + (param as usize % (2 * N)),
            sized,
        },
        6 => Plan::BadThreshold { q },
        7 if param.is_multiple_of(2) => Plan::BadK { q },
        _ => Plan::BadSize { q },
    }
}

fn build_query<'a>(plan: &Plan, entries: &'a [(DomainId, u64, Signature)]) -> Query<'a> {
    match *plan {
        Plan::Threshold { q, t, sized } => {
            let (_, size, ref sig) = entries[q];
            let query = Query::threshold(sig, t);
            if sized {
                query.with_size(size)
            } else {
                query
            }
        }
        Plan::TopK { q, k, sized } => {
            let (_, size, ref sig) = entries[q];
            let query = Query::top_k(sig, k);
            if sized {
                query.with_size(size)
            } else {
                query
            }
        }
        Plan::BadThreshold { q } => Query::threshold(&entries[q].2, 1.5),
        Plan::BadK { q } => Query::top_k(&entries[q].2, 0),
        Plan::BadSize { q } => Query::threshold(&entries[q].2, 0.5).with_size(0),
    }
}

fn matches_looped(
    label: &str,
    batched: &Result<SearchOutcome, QueryError>,
    looped: &Result<SearchOutcome, QueryError>,
) -> Result<(), TestCaseError> {
    match (batched, looped) {
        (Ok(b), Ok(l)) => {
            prop_assert!(b.hits == l.hits, "{label}: hits diverge");
            prop_assert!(
                b.stats.partitions_probed == l.stats.partitions_probed
                    && b.stats.partitions_total == l.stats.partitions_total
                    && b.stats.candidates == l.stats.candidates
                    && b.stats.survivors == l.stats.survivors,
                "{label}: deterministic stats diverge: {:?} vs {:?}",
                b.stats,
                l.stats
            );
        }
        (Err(b), Err(l)) => prop_assert!(b == l, "{label}: errors diverge: {b:?} vs {l:?}"),
        (b, l) => {
            return Err(TestCaseError::fail(format!(
                "{label}: batched {b:?} vs looped {l:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    /// The headline property: `search_batch` ≡ mapped `search`, per item,
    /// for arbitrary mixes on every backend.
    #[test]
    fn search_batch_equals_mapped_search(
        script in prop::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        let w = world();
        let plans: Vec<Plan> = script.into_iter().map(decode).collect();
        let queries: Vec<Query<'_>> = plans.iter().map(|p| build_query(p, &w.entries)).collect();
        for (name, index) in &w.backends {
            let batched = index.search_batch(&queries);
            prop_assert!(batched.len() == queries.len(), "{name}: result count");
            for (i, (b, q)) in batched.iter().zip(&queries).enumerate() {
                let looped = index.search(q);
                matches_looped(&format!("{name} item {i}"), b, &looped)?;
            }
        }
    }

    /// Chunk-boundary stress: the same batch must answer identically
    /// whatever its length — append a prefix of itself and the shared
    /// prefix of results must not move.
    #[test]
    fn batch_answers_do_not_depend_on_batch_shape(
        script in prop::collection::vec(0u64..u64::MAX, 2..12),
        extra in 1usize..8,
    ) {
        let w = world();
        let plans: Vec<Plan> = script.into_iter().map(decode).collect();
        let queries: Vec<Query<'_>> = plans.iter().map(|p| build_query(p, &w.entries)).collect();
        let mut extended = queries.clone();
        extended.extend(queries.iter().take(extra.min(queries.len())).cloned());
        for (name, index) in &w.backends {
            let short = index.search_batch(&queries);
            let long = index.search_batch(&extended);
            for (i, (s, l)) in short.iter().zip(long.iter()).enumerate() {
                matches_looped(&format!("{name} prefix item {i}"), l, s)?;
            }
        }
    }
}
