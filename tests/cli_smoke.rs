//! End-to-end smoke test of the `lshe` command-line tool through
//! `lshe_cli::run` — the exact code path the binary's `main` dispatches to
//! — covering the full index → stats → query → top-k workflow on a small
//! on-disk corpus.

use std::path::{Path, PathBuf};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lshe_smoke_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_corpus(dir: &Path) {
    // `suppliers.part_no` ⊆ `parts.part_no`, so a high-threshold query for
    // the supplier column must surface the parts table.
    std::fs::write(
        dir.join("parts.csv"),
        "part_no,descr\np-001,bolt\np-002,nut\np-003,washer\np-004,screw\np-005,rivet\n\
         p-006,pin\np-007,clip\np-008,stud\np-009,dowel\np-010,cap\np-011,plug\np-012,ring\n",
    )
    .expect("write parts.csv");
    std::fs::write(
        dir.join("suppliers.csv"),
        "part_no,supplier\np-001,acme\np-002,acme\np-003,borealis\np-004,borealis\n\
         p-005,canaduck\np-006,canaduck\np-007,delta\np-008,delta\n",
    )
    .expect("write suppliers.csv");
    // A JSONL export sharing the same universe exercises cross-format
    // ingestion on the same run.
    std::fs::write(
        dir.join("inventory.jsonl"),
        "{\"part\": \"p-001\"}\n{\"part\": \"p-002\"}\n{\"part\": \"p-003\"}\n\
         {\"part\": \"p-004\"}\n{\"part\": \"p-005\"}\n{\"part\": \"p-006\"}\n",
    )
    .expect("write inventory.jsonl");
}

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn index_query_topk_stats_round_trip() {
    let dir = scratch_dir("round_trip");
    write_corpus(&dir);
    let index = dir.join("corpus.lshe");
    let dir_s = dir.to_str().expect("utf8 path");
    let index_s = index.to_str().expect("utf8 path");

    // Index the directory with ranked sketches so top-k works too.
    let report = lshe_cli::run(&args(&[
        "index",
        "--dir",
        dir_s,
        "--out",
        index_s,
        "--partitions",
        "4",
        "--min-size",
        "5",
        "--ranked",
        "true",
    ]))
    .expect("index succeeds");
    assert!(report.contains("indexed"), "index report: {report}");
    assert!(index.exists(), "index file written");

    // Stats must describe the persisted index.
    let stats = lshe_cli::run(&args(&["stats", "--index", index_s])).expect("stats succeeds");
    assert!(stats.contains("partitions"), "stats report: {stats}");

    // Threshold query: suppliers.part_no is a subset of parts.part_no.
    let query_csv = dir.join("suppliers.csv");
    let hits = lshe_cli::run(&args(&[
        "query",
        "--index",
        index_s,
        "--csv",
        query_csv.to_str().expect("utf8 path"),
        "--column",
        "part_no",
        "--threshold",
        "0.7",
    ]))
    .expect("query succeeds");
    assert!(
        hits.contains("parts.part_no"),
        "containment join missing from:\n{hits}"
    );

    // Top-k query on the ranked index must produce containment estimates.
    let top = lshe_cli::run(&args(&[
        "query",
        "--index",
        index_s,
        "--csv",
        query_csv.to_str().expect("utf8 path"),
        "--column",
        "part_no",
        "--top-k",
        "3",
    ]))
    .expect("top-k succeeds");
    assert!(top.contains("t̂ ="), "top-k output lacks estimates:\n{top}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_text_and_error_paths() {
    // `help` and the empty invocation print usage.
    assert!(lshe_cli::run(&[]).expect("usage").contains("COMMANDS"));
    assert!(lshe_cli::run(&args(&["help"]))
        .expect("usage")
        .contains("lshe index"));

    // Unknown commands and missing flags are usage errors, not panics.
    assert!(matches!(
        lshe_cli::run(&args(&["explode"])).unwrap_err(),
        lshe_cli::CliError::Usage(_)
    ));
    assert!(matches!(
        lshe_cli::run(&args(&["query", "--index", "only.lshe"])).unwrap_err(),
        lshe_cli::CliError::Usage(_)
    ));

    // A corrupt index reports an index error.
    let dir = scratch_dir("corrupt");
    let bad = dir.join("bad.lshe");
    std::fs::write(&bad, b"not an index").expect("write corrupt file");
    std::fs::write(dir.join("q.csv"), "col\nv1\n").expect("write query csv");
    let err = lshe_cli::run(&args(&[
        "query",
        "--index",
        bad.to_str().expect("utf8 path"),
        "--csv",
        dir.join("q.csv").to_str().expect("utf8 path"),
        "--column",
        "col",
    ]))
    .unwrap_err();
    assert!(matches!(err, lshe_cli::CliError::Index(_)), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
