//! The sharded (cluster-simulation) deployment must answer like a single
//! ensemble: the union of per-shard candidate sets, sorted and unique, with
//! no domain lost to shard assignment.

use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy, ShardedEnsemble};
use lshe_datagen::{generate_catalog, sample_queries, CorpusConfig, SizeBand};
use lshe_minhash::{MinHasher, Signature};

fn world() -> (Vec<u32>, Vec<u64>, Vec<Signature>, Vec<u32>) {
    let catalog = generate_catalog(&CorpusConfig::tiny(2_000, 31));
    let hasher = MinHasher::new(256);
    let signatures: Vec<Signature> = catalog.iter().map(|(_, d)| d.signature(&hasher)).collect();
    let ids: Vec<u32> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let queries = sample_queries(&catalog, 50, SizeBand::All, 9);
    (ids, sizes, signatures, queries)
}

fn config() -> EnsembleConfig {
    EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 8 },
        ..EnsembleConfig::default()
    }
}

#[test]
fn sharded_union_equals_shard_by_shard_queries() {
    let (ids, sizes, signatures, queries) = world();
    let refs: Vec<&Signature> = signatures.iter().collect();
    let sharded = ShardedEnsemble::build_from_parts(5, config(), &ids, &sizes, &refs);
    assert_eq!(sharded.num_shards(), 5);
    assert_eq!(sharded.len(), ids.len());

    for &q in queries.iter().take(20) {
        let combined = sharded.query_with_size(&signatures[q as usize], sizes[q as usize], 0.5);
        let mut manual: Vec<u32> = sharded
            .shards()
            .iter()
            .flat_map(|s| s.query_with_size(&signatures[q as usize], sizes[q as usize], 0.5))
            .collect();
        manual.sort_unstable();
        manual.dedup();
        assert_eq!(combined, manual, "query {q}");
    }
}

#[test]
fn no_domain_lost_to_sharding() {
    let (ids, sizes, signatures, _) = world();
    let refs: Vec<&Signature> = signatures.iter().collect();
    let sharded = ShardedEnsemble::build_from_parts(7, config(), &ids, &sizes, &refs);
    // Every domain must find itself at t* = 1.0 regardless of its shard.
    for &id in ids.iter().step_by(37) {
        let hits = sharded.query_with_size(&signatures[id as usize], sizes[id as usize], 1.0);
        assert!(hits.contains(&id), "domain {id} lost");
    }
}

#[test]
fn sharded_recall_matches_single_index() {
    let (ids, sizes, signatures, queries) = world();
    let refs: Vec<&Signature> = signatures.iter().collect();
    let sharded = ShardedEnsemble::build_from_parts(5, config(), &ids, &sizes, &refs);
    let single = LshEnsemble::build_from_parts(config(), &ids, &sizes, &refs);

    // Shard-local partition bounds differ from global ones, so candidate
    // sets may differ slightly — but aggregate result sizes must be close.
    let (mut total_sharded, mut total_single) = (0usize, 0usize);
    for &q in &queries {
        total_sharded += sharded
            .query_with_size(&signatures[q as usize], sizes[q as usize], 0.5)
            .len();
        total_single += single
            .query_with_size(&signatures[q as usize], sizes[q as usize], 0.5)
            .len();
    }
    let ratio = total_sharded as f64 / total_single.max(1) as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "sharded/single candidate ratio out of band: {ratio} ({total_sharded}/{total_single})"
    );
}

#[test]
fn single_shard_is_identical_to_unsharded() {
    let (ids, sizes, signatures, queries) = world();
    let refs: Vec<&Signature> = signatures.iter().collect();
    let sharded = ShardedEnsemble::build_from_parts(1, config(), &ids, &sizes, &refs);
    let single = LshEnsemble::build_from_parts(config(), &ids, &sizes, &refs);
    for &q in queries.iter().take(10) {
        for t in [0.3, 0.7, 1.0] {
            assert_eq!(
                sharded.query_with_size(&signatures[q as usize], sizes[q as usize], t),
                single.query_with_size(&signatures[q as usize], sizes[q as usize], t),
                "query {q} at t = {t}"
            );
        }
    }
}
