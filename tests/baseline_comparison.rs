//! Cross-index comparison on a skewed corpus: the LSH Ensemble must beat
//! the MinHash LSH baseline on precision and Asymmetric Minwise Hashing on
//! recall — the paper's central experimental claim (§6.1).

use lshe_core::{AsymIndex, ContainmentSearch, EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_corpus::{Catalog, ExactIndex};
use lshe_datagen::{
    aggregate, generate_catalog, query_accuracy, sample_queries, CorpusConfig, SizeBand,
};
use lshe_minhash::{MinHasher, Signature};

fn skewed_world() -> (Catalog, Vec<Signature>, ExactIndex, Vec<u32>) {
    // Wider size range than the tiny config → heavier skew → stronger
    // separation between the index families.
    let mut cfg = CorpusConfig::tiny(4_000, 13);
    cfg.max_size = 1 << 13;
    let catalog = generate_catalog(&cfg);
    let hasher = MinHasher::new(256);
    let signatures: Vec<Signature> = catalog.iter().map(|(_, d)| d.signature(&hasher)).collect();
    let exact = ExactIndex::build(&catalog);
    let queries = sample_queries(&catalog, 100, SizeBand::All, 3);
    (catalog, signatures, exact, queries)
}

fn accuracy(
    index: &dyn ContainmentSearch,
    catalog: &Catalog,
    signatures: &[Signature],
    exact: &ExactIndex,
    queries: &[u32],
    t_star: f64,
) -> (f64, f64, usize) {
    let per_query: Vec<_> = queries
        .iter()
        .map(|&q| {
            let truth = exact.search(catalog.domain(q), t_star);
            let answer = index.search(
                &signatures[q as usize],
                catalog.domain(q).len() as u64,
                t_star,
            );
            query_accuracy(&answer, &truth)
        })
        .collect();
    let agg = aggregate(&per_query);
    (agg.precision, agg.recall, agg.empty_answers)
}

#[test]
fn ensemble_beats_baseline_on_precision() {
    let (catalog, signatures, exact, queries) = skewed_world();
    let ids: Vec<u32> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let refs: Vec<&Signature> = signatures.iter().collect();

    let baseline = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::Single,
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &refs,
    );
    let ensemble = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 16 },
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &refs,
    );

    let (pb, rb, _) = accuracy(&baseline, &catalog, &signatures, &exact, &queries, 0.5);
    let (pe, re, _) = accuracy(&ensemble, &catalog, &signatures, &exact, &queries, 0.5);
    assert!(pe > pb + 0.05, "precision: ensemble {pe} vs baseline {pb}");
    assert!(re > 0.8, "ensemble recall {re}");
    assert!(rb > 0.8, "baseline recall {rb}");
}

#[test]
fn asym_recall_collapses_under_skew_but_ensemble_does_not() {
    let (catalog, signatures, exact, queries) = skewed_world();
    let ids: Vec<u32> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let refs: Vec<&Signature> = signatures.iter().collect();

    let mut asym_builder = AsymIndex::builder();
    for ((id, size), sig) in ids.iter().zip(&sizes).zip(&signatures) {
        asym_builder.add(*id, *size, sig.clone());
    }
    let asym = asym_builder.build();
    let ensemble = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 16 },
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &refs,
    );

    let (_, r_asym, empty_asym) = accuracy(&asym, &catalog, &signatures, &exact, &queries, 0.8);
    let (_, r_ens, empty_ens) = accuracy(&ensemble, &catalog, &signatures, &exact, &queries, 0.8);

    assert!(
        r_ens > r_asym + 0.3,
        "ensemble recall {r_ens} must far exceed Asym's {r_asym} under skew"
    );
    assert!(
        empty_asym > empty_ens,
        "Asym should return more empty answers ({empty_asym} vs {empty_ens})"
    );
    // The paper: most Asym results are empty at high thresholds.
    assert!(
        empty_asym * 2 > queries.len(),
        "Asym empty answers {empty_asym} of {}",
        queries.len()
    );
}

#[test]
fn all_indexes_agree_on_exact_duplicates() {
    let (catalog, signatures, _, _) = skewed_world();
    let ids: Vec<u32> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let refs: Vec<&Signature> = signatures.iter().collect();
    let ensemble = LshEnsemble::build_from_parts(EnsembleConfig::default(), &ids, &sizes, &refs);
    let baseline = LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy: PartitionStrategy::Single,
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &refs,
    );
    for q in [0u32, 500, 1500, 3999] {
        for index in [&ensemble, &baseline] {
            let hits = index.search(&signatures[q as usize], sizes[q as usize], 1.0);
            assert!(
                hits.contains(&q),
                "{} lost exact duplicate {q}",
                index.label()
            );
        }
    }
}
