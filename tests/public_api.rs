//! Public-API smoke test: the `lshe` facade is the documented entry point,
//! so its re-exports ARE the product surface. This suite references every
//! promised name — the new unified query surface and the pre-existing
//! types — so an accidental removal or rename fails CI at compile time,
//! and exercises a minimal end-to-end flow through the facade only.

use lshe::{
    Catalog, CommitReport, DeltaLog, DeltaOp, Domain, DomainId, DomainIndex, EnsembleConfig,
    ExactIndex, ForestIndex, IndexContainer, IndexKind, LshEnsemble, LshForest, MinHasher,
    MutableIndex, MutationError, OnePermHasher, PartitionStrategy, Query, QueryError, QueryMode,
    QueryStats, RankedHit, RankedIndex, SearchHit, SearchOutcome, ServerConfig, ShardedEnsemble,
    ShardedRanked, Signature, DEFAULT_REBALANCE_TRIGGER, ESTIMATE_SLACK,
};

/// Compile-time assertions: the traits are object safe and the key types
/// keep their auto traits (the server shares outcomes across threads).
#[allow(dead_code)]
fn static_surface_assertions() {
    fn object_safe(_: &dyn DomainIndex) {}
    fn mutable_object_safe(_: &mut dyn MutableIndex) {}
    fn send_sync<T: Send + Sync>() {}
    send_sync::<Box<dyn DomainIndex>>();
    send_sync::<SearchOutcome>();
    send_sync::<QueryStats>();
    send_sync::<QueryError>();
    send_sync::<MutationError>();
    send_sync::<CommitReport>();
}

#[test]
fn facade_exposes_the_unified_query_surface() {
    const { assert!(ESTIMATE_SLACK > 0.0 && ESTIMATE_SLACK < 1.0) };

    // Build a small ranked index purely through facade names.
    let hasher: MinHasher = MinHasher::new(256);
    let pool = MinHasher::synthetic_values(9, 200);
    let mut builder = RankedIndex::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 2 },
        ..EnsembleConfig::default()
    });
    for k in 0..10u32 {
        let vals = &pool[..20 * (k as usize + 1)];
        builder.add(k, vals.len() as u64, hasher.signature(vals.iter().copied()));
    }
    let index: Box<dyn DomainIndex> = Box::new(builder.build());

    let sig: Signature = hasher.signature(pool[..60].iter().copied());
    let query: Query<'_> = Query::threshold(&sig, 0.7).with_size(60);
    assert_eq!(query.mode(), QueryMode::Threshold(0.7));
    let outcome: SearchOutcome = index.search(&query).expect("valid query");
    let hit: &SearchHit = outcome.hits.first().expect("self hit");
    let id: DomainId = hit.id;
    assert_eq!(id, 2);
    let stats: QueryStats = outcome.stats;
    assert!(stats.candidates >= stats.survivors);

    // Typed errors surface through the facade too.
    let err: QueryError = index
        .search(&Query::top_k(&sig, 0).with_size(60))
        .unwrap_err();
    assert!(matches!(err, QueryError::Invalid(_)));

    // Batched execution is part of the promised surface: request order,
    // per-item typed errors, answers identical to single search.
    let batch = [
        Query::threshold(&sig, 0.7).with_size(60),
        Query::top_k(&sig, 0).with_size(60),
    ];
    let results: Vec<Result<SearchOutcome, QueryError>> = index.search_batch(&batch);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].as_ref().expect("valid").hits, outcome.hits);
    assert!(matches!(results[1], Err(QueryError::Invalid(_))));

    // RankedHit is still exported for the inherent query paths.
    let _: Vec<RankedHit>;
}

#[test]
fn facade_exposes_the_mutation_surface() {
    const { assert!(DEFAULT_REBALANCE_TRIGGER > 1.0) };
    let hasher = MinHasher::new(256);
    let pool = MinHasher::synthetic_values(4, 200);
    let mut builder = RankedIndex::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 2 },
        ..EnsembleConfig::default()
    });
    for k in 0..8u32 {
        let vals = &pool[..20 * (k as usize + 1)];
        builder.add(k, vals.len() as u64, hasher.signature(vals.iter().copied()));
    }
    let mut index = builder.build();
    let mutable: &mut dyn MutableIndex = &mut index;

    let sig = hasher.signature(pool[..50].iter().copied());
    mutable.insert(100, 50, &sig).expect("insert");
    assert_eq!(mutable.staged_len(), 1);
    assert!(matches!(
        mutable.insert(100, 50, &sig),
        Err(MutationError::DuplicateId(100))
    ));
    mutable.remove(3).expect("remove");
    let report: CommitReport = mutable.commit();
    assert_eq!(report.merged, 1);
    assert_eq!(mutable.len(), 8);

    // Delta-log types are reachable and round-trip through the facade.
    let dir = std::env::temp_dir().join(format!("lshe_public_api_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let log = DeltaLog::sidecar(&dir.join("api.lshe"));
    log.append(&DeltaOp::Remove { id: 1 }, 101).expect("append");
    assert_eq!(log.read().expect("read"), vec![DeltaOp::Remove { id: 1 }]);
    log.clear().expect("clear");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn facade_keeps_the_existing_types_reachable() {
    // Core index types.
    let _ = LshEnsemble::builder();
    let _ = ShardedEnsemble::builder(2, EnsembleConfig::default());
    let _ = ForestIndex::new(EnsembleConfig::default());
    let _ = LshForest::new(4, 4);
    let _ = OnePermHasher::new(128);
    fn takes_sharded_ranked(_: Option<ShardedRanked>) {}
    takes_sharded_ranked(None);

    // Corpus + container + server config.
    let mut catalog = Catalog::new();
    for k in 0..4u64 {
        catalog.push(
            Domain::from_hashes((10 * k..10 * k + 20).collect()),
            lshe::corpus::DomainMeta::new(format!("t{k}"), "col"),
        );
    }
    let exact = ExactIndex::build(&catalog);
    assert_eq!(DomainIndex::len(&exact), 4);
    let container = IndexContainer::build(&catalog, 2, true);
    assert_eq!(container.kind(), IndexKind::Ranked);
    assert_eq!(container.open_index().len(), 4);
    let _ = ServerConfig::default();

    // Module re-exports stay wired.
    let _ = lshe::minhash::DEFAULT_NUM_PERM;
    let _ = lshe::core::EnsembleConfig::default();
}
