//! Public-API smoke test: the `lshe` facade is the documented entry point,
//! so its re-exports ARE the product surface. This suite references every
//! promised name — the new unified query surface and the pre-existing
//! types — so an accidental removal or rename fails CI at compile time,
//! and exercises a minimal end-to-end flow through the facade only.

use lshe::{
    Catalog, Domain, DomainId, DomainIndex, EnsembleConfig, ExactIndex, ForestIndex,
    IndexContainer, IndexKind, LshEnsemble, LshForest, MinHasher, OnePermHasher, PartitionStrategy,
    Query, QueryError, QueryMode, QueryStats, RankedHit, RankedIndex, SearchHit, SearchOutcome,
    ServerConfig, ShardedEnsemble, ShardedRanked, Signature, ESTIMATE_SLACK,
};

/// Compile-time assertions: the trait is object safe and the key types
/// keep their auto traits (the server shares outcomes across threads).
#[allow(dead_code)]
fn static_surface_assertions() {
    fn object_safe(_: &dyn DomainIndex) {}
    fn send_sync<T: Send + Sync>() {}
    send_sync::<Box<dyn DomainIndex>>();
    send_sync::<SearchOutcome>();
    send_sync::<QueryStats>();
    send_sync::<QueryError>();
}

#[test]
fn facade_exposes_the_unified_query_surface() {
    const { assert!(ESTIMATE_SLACK > 0.0 && ESTIMATE_SLACK < 1.0) };

    // Build a small ranked index purely through facade names.
    let hasher: MinHasher = MinHasher::new(256);
    let pool = MinHasher::synthetic_values(9, 200);
    let mut builder = RankedIndex::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 2 },
        ..EnsembleConfig::default()
    });
    for k in 0..10u32 {
        let vals = &pool[..20 * (k as usize + 1)];
        builder.add(k, vals.len() as u64, hasher.signature(vals.iter().copied()));
    }
    let index: Box<dyn DomainIndex> = Box::new(builder.build());

    let sig: Signature = hasher.signature(pool[..60].iter().copied());
    let query: Query<'_> = Query::threshold(&sig, 0.7).with_size(60);
    assert_eq!(query.mode(), QueryMode::Threshold(0.7));
    let outcome: SearchOutcome = index.search(&query).expect("valid query");
    let hit: &SearchHit = outcome.hits.first().expect("self hit");
    let id: DomainId = hit.id;
    assert_eq!(id, 2);
    let stats: QueryStats = outcome.stats;
    assert!(stats.candidates >= stats.survivors);

    // Typed errors surface through the facade too.
    let err: QueryError = index
        .search(&Query::top_k(&sig, 0).with_size(60))
        .unwrap_err();
    assert!(matches!(err, QueryError::Invalid(_)));

    // RankedHit is still exported for the inherent query paths.
    let _: Vec<RankedHit>;
}

#[test]
fn facade_keeps_the_existing_types_reachable() {
    // Core index types.
    let _ = LshEnsemble::builder();
    let _ = ShardedEnsemble::builder(2, EnsembleConfig::default());
    let _ = ForestIndex::new(EnsembleConfig::default());
    let _ = LshForest::new(4, 4);
    let _ = OnePermHasher::new(128);
    fn takes_sharded_ranked(_: Option<ShardedRanked>) {}
    takes_sharded_ranked(None);

    // Corpus + container + server config.
    let mut catalog = Catalog::new();
    for k in 0..4u64 {
        catalog.push(
            Domain::from_hashes((10 * k..10 * k + 20).collect()),
            lshe::corpus::DomainMeta::new(format!("t{k}"), "col"),
        );
    }
    let exact = ExactIndex::build(&catalog);
    assert_eq!(DomainIndex::len(&exact), 4);
    let container = IndexContainer::build(&catalog, 2, true);
    assert_eq!(container.kind(), IndexKind::Ranked);
    assert_eq!(container.open_index().len(), 4);
    let _ = ServerConfig::default();

    // Module re-exports stay wired.
    let _ = lshe::minhash::DEFAULT_NUM_PERM;
    let _ = lshe::core::EnsembleConfig::default();
}
