//! Offline shim for the subset of the `parking_lot` API this workspace
//! uses: [`Mutex`] and [`RwLock`] with non-poisoning, non-`Result` lock
//! methods.
//!
//! The build environment has no access to crates.io, so this local crate
//! wraps `std::sync` primitives and recovers from poisoning (a panicking
//! holder does not make the lock unusable — the same observable behaviour
//! `parking_lot` provides). Swap the workspace dependency back to the real
//! crate when a registry is available; no call sites need to change.

#![warn(clippy::all)]

use std::sync;

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn survives_poisoning() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison");
        })
        .join();
        assert_eq!(*l.read(), 0);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
