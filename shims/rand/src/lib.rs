//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for `rand 0.8`. It implements exactly the surface the
//! workspace calls — [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`] — with deterministic, seedable output
//! (xoshiro256++ seeded via SplitMix64, the same construction `rand` uses
//! for `SmallRng`). Swap the workspace dependency back to the real crate
//! when a registry is available; no call sites need to change.

#![warn(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), exactly as `rand` does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer-like types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                // Widening-multiply rejection sampling (Lemire) keeps the
                // draw unbiased without a modulo on the hot path.
                let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                <$t>::sample_inclusive(rng, *self.start(), *self.end())
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        f64::sample_inclusive(rng, self.start, self.end)
    }
}
impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        f64::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion (the `SmallRng` construction of the
    /// real `rand`; statistically strong and fast, though not
    /// cryptographic — exactly what tests and data generation need).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_inclusive(rng, 0, self.len() - 1)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn f64_gen_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((0.24..0.26).contains(&(hits as f64 / 100_000.0)));
    }
}
