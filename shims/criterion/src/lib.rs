//! Offline shim for the subset of the `criterion` benchmark-harness API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for `criterion 0.5` with `harness = false` benches. It keeps
//! the same structure — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — but replaces the
//! statistical machinery with a plain warm-up + timed-loop measurement and
//! a text report on stdout. Good enough to compare orders of magnitude
//! and to keep every bench compiling; swap back to the real crate when a
//! registry is available.
//!
//! Environment knobs: `CRITERION_SHIM_MEASURE_MS` (default 300) bounds the
//! measurement window per benchmark case.

#![warn(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
///
/// The shim runs one setup per iteration regardless of the hint; the
/// variants exist so call sites keep their tuning intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark, echoed in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measure: Duration,
    /// Filled by the timing loop: (total busy time, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, called repeatedly in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~10% of the window has elapsed.
        let warm = self.measure / 10;
        let start = Instant::now();
        while start.elapsed() < warm {
            black_box(routine());
        }
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let window = Instant::now();
        while window.elapsed() < self.measure {
            let t = Instant::now();
            black_box(routine());
            busy += t.elapsed();
            iters += 1;
        }
        self.result = Some((busy, iters.max(1)));
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.measure / 10;
        while Instant::now() < warm_deadline {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            busy += t.elapsed();
            iters += 1;
        }
        self.result = Some((busy, iters.max(1)));
    }
}

fn measure_window() -> Duration {
    std::env::var("CRITERION_SHIM_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_millis(300), Duration::from_millis)
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

fn run_case(name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        measure: measure_window(),
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((busy, iters)) => {
            let ns = busy.as_nanos() as f64 / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) if ns > 0.0 => {
                    format!("  {:10.0} elem/s", n as f64 / (ns / 1e9))
                }
                Some(Throughput::Bytes(n)) if ns > 0.0 => {
                    format!("  {:10.0} B/s", n as f64 / (ns / 1e9))
                }
                _ => String::new(),
            };
            println!(
                "{name:<48} {} /iter  ({iters} iters){rate}",
                format_time(ns)
            );
        }
        None => println!("{name:<48} (no measurement: bencher never invoked)"),
    }
}

/// Group of related benchmark cases sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent cases.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark case over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_case(&label, self.throughput, |b| f(b, input));
    }

    /// Runs one benchmark case without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_case(&label, self.throughput, |b| f(b));
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, one per bench binary.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_case(name, None, |b| f(b));
        self
    }

    /// Opens a named group of benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Final configuration hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags such as `--bench`; the
            // shim accepts and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("case", 1), &3u64, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
