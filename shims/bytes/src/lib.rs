//! Offline shim for the subset of the `bytes` crate API this workspace
//! uses: the [`Bytes`] cheaply-cloneable, sliceable, shared byte buffer.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for `bytes 1.x`. Semantics match the real crate for the
//! methods provided: `clone()` and `slice()` are O(1) and share one
//! allocation. Swap the workspace dependency back to the real crate when a
//! registry is available; no call sites need to change.

#![warn(clippy::all)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<[u8]>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty `Bytes` without allocating.
    pub const fn new() -> Self {
        Self {
            data: None,
            offset: 0,
            len: 0,
        }
    }

    /// Creates `Bytes` from a static slice.
    ///
    /// The shim allocates once (the real crate borrows the static data);
    /// behaviour is otherwise identical.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            len: data.len(),
            offset: 0,
            data: Some(Arc::from(data)),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-slice sharing the same allocation (O(1)).
    ///
    /// # Panics
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "Bytes::slice: range {start}..{end} out of bounds for length {}",
            self.len
        );
        Self {
            data: self.data.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes().to_vec()
    }

    fn bytes(&self) -> &[u8] {
        match &self.data {
            Some(arc) => &arc[self.offset..self.offset + self.len],
            None => &[],
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.bytes()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            len: v.len(),
            offset: 0,
            data: Some(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.bytes() == other.bytes()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.bytes() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.bytes() == *other
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.bytes() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.bytes() == other.as_bytes()
    }
}
impl PartialEq<Bytes> for &str {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.bytes()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bytes().cmp(other.bytes())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.bytes().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.bytes() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from_static(b"hello world");
        let w = b.slice(6..11);
        assert_eq!(w.as_ref(), b"world");
        assert_eq!(w.len(), 5);
        let all = b.slice(..);
        assert_eq!(all, b);
    }

    #[test]
    fn empty_and_eq() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("abc"), Bytes::from_static(b"abc"));
        let owned = Bytes::from("abc");
        assert!(owned == *"abc");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from_static(b"xy").slice(1..5);
    }
}
