//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for `proptest 1.x`: the [`proptest!`] macro, range and
//! collection strategies, `any::<T>()`, a character-class string strategy,
//! and the `prop_assert*` macros. Differences from the real crate:
//!
//! * **No shrinking** — a failing case reports its inputs (via the
//!   `prop_assert*` message) and the case number, not a minimised input.
//! * **Deterministic** — the RNG seed is derived from the test name and
//!   case index, so `cargo test` is reproducible run-to-run and in CI.
//! * String strategies support only `[class]{m,n}`-shaped patterns (the
//!   one form the workspace uses), not full regex.
//!
//! `PROPTEST_CASES` overrides the number of cases per property
//! (default 64). Swap back to the real crate when a registry is
//! available; no call sites need to change.

#![warn(clippy::all)]

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies while generating a test case.
pub type TestRng = StdRng;

/// A failed property-test assertion (carried by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Number of cases to run per property (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic per-case RNG: seeded from the property name and case
/// index so failures are reproducible.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    StdRng::seed_from_u64(fnv1a(test_name.as_bytes()) ^ (u64::from(case) << 1))
}

/// Drives one property: `body` is called once per case with a fresh
/// deterministic RNG. Used by the [`proptest!`] macro expansion.
pub fn run_proptest<F>(test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let n = cases();
    for case in 0..n {
        let mut rng = test_rng(test_name, case);
        if let Err(e) = body(&mut rng) {
            panic!("proptest property {test_name:?} failed at case {case}/{n}: {e}");
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its implementations for ranges and
    //! pattern strings.

    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// Type of value the strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// `[class]{m,n}` pattern strings generate matching random strings.
    ///
    /// This is the subset of proptest's regex strategies the workspace
    /// uses; anything else panics with a clear message.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!(
                    "proptest shim: unsupported string pattern {self:?} \
                     (only `[class]{{m,n}}` is implemented)"
                )
            });
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect()
        }
    }

    /// Parses `[chars]{lo,hi}` / `[chars]{n}` / `[chars]` into
    /// (alphabet, lo, hi). Supports `a-z` ranges inside the class; a `-`
    /// first or last is literal.
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        if class.is_empty() {
            return None;
        }
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                if a > b {
                    return None;
                }
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let suffix = &rest[close + 1..];
        if suffix.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let counts = suffix.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the whole-domain strategy.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `hash_set`.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// A collection size specification, `lo..hi` style. Mirrors proptest's
    /// `SizeRange` so untyped literals like `1..300` infer `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "SizeRange: empty range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing a `Vec` of `element` draws with a length drawn
    /// from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `len` draws from `size`, elements from `element`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing a `HashSet`; like proptest, the realised set can
    /// be smaller than the drawn size when elements collide.
    pub struct HashSetStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E> Strategy for HashSetStrategy<E>
    where
        E: Strategy,
        E::Value: Eq + Hash,
    {
        type Value = HashSet<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` strategy: up to `size` draws from `element`, deduplicated.
    pub fn hash_set<E>(element: E, size: impl Into<SizeRange>) -> HashSetStrategy<E>
    where
        E: Strategy,
        E::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Alias module so `prop::collection::…` works as in the real crate.
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) so the harness can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y), "y = {y}");
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u8..255, 2..9),
            s in prop::collection::hash_set(0u64..1_000, 1..50),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(s.len() <= 50);
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "s = {s:?}");
        }

        #[test]
        fn any_u8_is_exhaustive_enough(b in prop::collection::vec(any::<u8>(), 0..64)) {
            prop_assert!(b.len() < 64);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let a: Vec<u64> = (0..5)
            .map(|c| (0u64..1_000_000).generate(&mut crate::test_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| (0u64..1_000_000).generate(&mut crate::test_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case() {
        crate::run_proptest("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
